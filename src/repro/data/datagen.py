"""The Fig. 4 data-generation flow: netlist → M3D → DfT → ATPG → graphs.

``prepare_design`` runs the whole per-design pipeline once and returns a
:class:`PreparedDesign` bundle that every downstream step (injection,
diagnosis, GNN dataset construction) shares.  Design *configurations* mirror
the paper's transferability matrix:

=========  ==========================================================
config     meaning
=========  ==========================================================
Syn-1      baseline synthesis + min-cut partitioning (training config)
TPI        Syn-1 netlist with observation test points inserted
Syn-2      re-synthesized netlist (different structure), min-cut
Par        Syn-1 netlist, spectral ("TP-GNN"-style) partitioning
Rand-k     Syn-1 netlist, random partition seed k (data augmentation)
=========  ==========================================================
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import SpanTracer

from ..analysis.drc import assert_clean
from ..atpg.tdf import AtpgResult, generate_tdf_patterns
from ..dft.observation import ObservationMap
from ..dft.scan import ScanConfig, build_scan_chains
from ..m3d.miv import MIV, extract_mivs, miv_fault_sites
from ..m3d.partition import PartitionResult, apply_partition, kway_partition, mincut_bipartition
from ..m3d.random_part import random_bipartition
from ..m3d.spectral import spectral_bipartition
from ..netlist.generators import GeneratorSpec, generate
from ..netlist.netlist import Netlist
from ..sim.faultsim import FaultMachine
from ..sim.logicsim import CompiledSimulator, TwoPatternResult
from ..synth.resynth import resynthesize
from ..synth.testpoints import insert_test_points
from ..core.hetgraph import HetGraph
from ..core.features import FeatureExtractor

__all__ = ["DesignConfig", "PreparedDesign", "prepare_design", "CONFIG_NAMES"]

CONFIG_NAMES = ("Syn-1", "TPI", "Syn-2", "Par")


@dataclass(frozen=True)
class DesignConfig:
    """One point of the transferability design matrix."""

    name: str
    resynth_seed: Optional[int] = None
    test_points: bool = False
    partitioner: str = "mincut"  # "mincut" | "spectral" | "random"
    partition_seed: int = 2
    n_tiers: int = 2

    @classmethod
    def standard(cls, name: str) -> "DesignConfig":
        """The four named configurations of the paper."""
        if name == "Syn-1":
            return cls(name)
        if name == "TPI":
            return cls(name, test_points=True)
        if name == "Syn-2":
            return cls(name, resynth_seed=11)
        if name == "Par":
            return cls(name, partitioner="spectral")
        if name.startswith("Rand-"):
            suffix = name.split("-", 1)[1]
            try:
                k = int(suffix, 10)
            except ValueError:
                raise ValueError(
                    f"bad Rand configuration {name!r}: expected an integer suffix "
                    f"like 'Rand-0', got suffix {suffix!r}"
                ) from None
            if k < 0:
                raise ValueError(
                    f"bad Rand configuration {name!r}: suffix must be >= 0"
                )
            return cls(name, partitioner="random", partition_seed=100 + k)
        if name == "Rand":
            raise ValueError(
                "bad Rand configuration 'Rand': expected 'Rand-<k>' with an "
                "integer suffix, e.g. 'Rand-0'"
            )
        raise ValueError(f"unknown configuration {name!r}")


@dataclass
class PreparedDesign:
    """Everything the framework needs about one (benchmark, config) point."""

    benchmark: str
    config: DesignConfig
    nl: Netlist
    partition: PartitionResult
    mivs: Sequence[MIV]
    scan: ScanConfig
    atpg: AtpgResult
    sim: CompiledSimulator
    machine: FaultMachine
    good: TwoPatternResult
    obsmaps: Dict[str, ObservationMap]
    het: HetGraph
    extractor: FeatureExtractor
    #: Full parameter record of the ``prepare_design`` call that produced
    #: this bundle (generator spec, config, DfT/ATPG knobs).  The runtime's
    #: content-addressed artifact cache keys designs and their dataset
    #: chunks off this.
    provenance: Dict[str, object] = field(default_factory=dict)

    @property
    def patterns(self):
        return self.atpg.patterns

    def obsmap(self, mode: str) -> ObservationMap:
        """Observation map for ``"bypass"`` or ``"compacted"`` mode."""
        return self.obsmaps[mode]


@contextmanager
def _stage(tracer: Optional["SpanTracer"], name: str) -> Iterator[None]:
    """A sub-stage span, or a no-op when no tracer rides along."""
    if tracer is None:
        yield
        return
    with tracer.span(name):
        yield


def prepare_design(
    spec: GeneratorSpec,
    config: DesignConfig,
    n_chains: int = 8,
    chains_per_channel: int = 4,
    atpg_seed: int = 3,
    max_patterns: int = 256,
    target_coverage: float = 0.95,
    packed: bool = True,
    drc: bool = True,
    tracer: Optional["SpanTracer"] = None,
) -> PreparedDesign:
    """Run the Fig. 4 flow for one benchmark/configuration point.

    The pipeline: generate (synthesize) → optional re-synthesis / TPI →
    3D partitioning → MIV extraction → scan stitching → TDF ATPG →
    good-machine simulation → heterogeneous graph + feature tables, then a
    fail-fast structural DRC pass (:mod:`repro.analysis.drc`) over the
    netlist, MIV list, and heterogeneous graph.  ``drc=False`` opts out —
    e.g. when deliberately preparing a broken design for diagnosis studies.
    The flag does not change the produced bundle, so it is excluded from
    ``provenance`` (and therefore from artifact-cache keys).

    ``tracer`` records one child span per pipeline stage (``generate``,
    ``partition``, ``scan``, ``atpg``, ``goodsim``, ``graph``, ``drc``) so
    ``repro stats`` can rank where preparation time goes.  Tracing is
    observability sideband: it never changes the bundle, the provenance, or
    any cache key.

    Raises:
        repro.analysis.drc.DrcError: when ``drc`` is on and any structural
            rule fires.
    """
    provenance: Dict[str, object] = {
        "spec": spec,
        "config": config,
        "n_chains": n_chains,
        "chains_per_channel": chains_per_channel,
        "atpg_seed": atpg_seed,
        "max_patterns": max_patterns,
        "target_coverage": target_coverage,
        "packed": packed,
    }
    with _stage(tracer, "generate"):
        nl = generate(spec)
        if config.resynth_seed is not None:
            nl = resynthesize(nl, seed=config.resynth_seed)
        if config.test_points:
            nl = insert_test_points(nl)

    with _stage(tracer, "partition"):
        if config.n_tiers > 2:
            part = kway_partition(nl, config.n_tiers, seed=config.partition_seed)
        elif config.partitioner == "mincut":
            part = mincut_bipartition(nl, seed=config.partition_seed)
        elif config.partitioner == "spectral":
            part = spectral_bipartition(nl, seed=config.partition_seed)
        elif config.partitioner == "random":
            part = random_bipartition(nl, seed=config.partition_seed)
        else:
            raise ValueError(f"unknown partitioner {config.partitioner!r}")
        apply_partition(nl, part)
        mivs = extract_mivs(nl)

    with _stage(tracer, "scan"):
        scan = build_scan_chains(nl, n_chains, chains_per_channel, seed=0)
        sim = CompiledSimulator(nl, packed=packed)
    with _stage(tracer, "atpg"):
        atpg = generate_tdf_patterns(
            nl,
            seed=atpg_seed,
            mivs=miv_fault_sites(nl, mivs),
            max_patterns=max_patterns,
            target_coverage=target_coverage,
            sim=sim,
        )
    with _stage(tracer, "goodsim"):
        good = sim.simulate_pair(atpg.patterns.v1, atpg.patterns.v2)
        obsmaps = {
            "bypass": ObservationMap.bypass(nl, scan),
            "compacted": ObservationMap.compacted(nl, scan),
            "misr": ObservationMap.misr(nl, scan),
        }
    with _stage(tracer, "graph"):
        het = HetGraph.build(nl, mivs, good.transitions())
    if drc:
        with _stage(tracer, "drc"):
            assert_clean(
                nl, mivs=mivs, het=het,
                context=f"prepared design {spec.name}/{config.name}",
            )
    return PreparedDesign(
        benchmark=spec.name,
        config=config,
        nl=nl,
        partition=part,
        mivs=mivs,
        scan=scan,
        atpg=atpg,
        sim=sim,
        machine=FaultMachine(sim),
        good=good,
        obsmaps=obsmaps,
        het=het,
        extractor=FeatureExtractor(het),
        provenance=provenance,
    )
