"""Diagnosis datasets: injected samples paired with back-trace sub-graphs.

Datasets are generated in fixed-size *chunks*: :func:`build_dataset` splits
the requested sample count over the canonical chunk grid
(:func:`repro.runtime.seeds.chunk_plan`) and gives every chunk its own
defect-sampler seed derived from ``(master seed, design identity, mode,
kind, chunk index)``.  Chunks are therefore independent work units — the
parallel runtime (:mod:`repro.runtime`) executes the *same* grid across
worker processes and concatenates in chunk order, producing byte-identical
datasets for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..atpg.faults import Fault, site_tier
from ..m3d.defects import DefectSampler
from ..nn.data import GraphData
from ..runtime.seeds import DEFAULT_CHUNK_SIZE, chunk_plan, derive_seed
from ..tester.injection import InjectionCampaign, Sample
from ..core.backtrace import backtrace
from .datagen import PreparedDesign

__all__ = [
    "LabeledSample",
    "SampleSet",
    "build_dataset",
    "build_dataset_chunk",
    "chunk_seed",
]


@dataclass
class LabeledSample:
    """One failing chip together with its GNN-ready sub-graph."""

    sample: Sample
    graph: GraphData

    @property
    def faults(self) -> Tuple[Fault, ...]:
        return self.sample.faults


@dataclass
class SampleSet:
    """A dataset of labeled samples for one (design, observation-mode) pair."""

    design: PreparedDesign
    mode: str
    items: List[LabeledSample]

    def __len__(self) -> int:
        return len(self.items)

    @property
    def graphs(self) -> List[GraphData]:
        return [it.graph for it in self.items]

    @property
    def samples(self) -> List[Sample]:
        return [it.sample for it in self.items]


def _graph_labels(design: PreparedDesign, faults: Sequence[Fault]) -> Tuple[int, np.ndarray]:
    """Graph-level tier label and per-node MIV labels for injected faults.

    The tier label is the tier containing the gate-level fault(s); MIV-only
    samples carry -1 (MIVs span tiers).  Node labels flag the faulty MIV
    nodes in HetGraph index space.
    """
    het = design.het
    tiers = {site_tier(design.nl, f.site) for f in faults}
    tiers.discard(None)
    y = int(next(iter(tiers))) if len(tiers) == 1 else -1
    node_y = np.zeros(het.n_nodes)
    for f in faults:
        if f.site.kind == "miv":
            v = het.miv_index.get(f.site.miv_id)
            if v is not None:
                node_y[v] = 1.0
    return y, node_y


def chunk_seed(
    design: PreparedDesign, mode: str, kind: str, seed: int, chunk_index: int
) -> int:
    """The derived defect-sampler seed of one (design, dataset, chunk) unit.

    A pure function of the master seed and the unit identity — independent
    of worker count, scheduling order, and process boundaries.
    """
    return derive_seed(seed, design.benchmark, design.config.name, mode, kind, chunk_index)


def build_dataset_chunk(
    design: PreparedDesign,
    mode: str,
    chunk_index: int,
    chunk_n: int,
    seed: int,
    kind: str = "single",
    miv_fraction: float = 0.15,
) -> List[LabeledSample]:
    """Generate one chunk of labeled samples (a single runtime work unit).

    Args:
        design: Prepared (benchmark, config) bundle.
        mode: Observation mode, ``"bypass"`` or ``"compacted"``.
        chunk_index: Position of this chunk in the canonical grid.
        chunk_n: Target number of failing chips for this chunk.
        seed: The dataset's *master* seed; the chunk derives its own.
        kind: ``"single"`` (one TDF; ``miv_fraction`` of them in MIVs),
            ``"multi"`` (2–5 tier-systematic TDFs), or ``"miv"`` (MIV-only).
        miv_fraction: MIV share for ``kind="single"``.

    Returns:
        Labeled samples; injections whose back-trace yields an empty
        sub-graph are skipped, so a chunk may come up short.
    """
    obsmap = design.obsmap(mode)
    sampler = DefectSampler(
        design.nl, design.mivs, seed=chunk_seed(design, mode, kind, seed, chunk_index)
    )
    campaign = InjectionCampaign(design.machine, design.good, obsmap, sampler)
    if kind == "single":
        raw = campaign.single_fault_samples(chunk_n, miv_fraction=miv_fraction)
    elif kind == "multi":
        raw = campaign.multi_fault_samples(chunk_n)
    elif kind == "miv":
        raw = campaign.miv_fault_samples(chunk_n)
    else:
        raise ValueError(f"unknown dataset kind {kind!r}")

    items: List[LabeledSample] = []
    for s in raw:
        mask = backtrace(design.het, obsmap, s.log)
        if not mask.any():
            continue
        y, node_y = _graph_labels(design, s.faults)
        graph = design.extractor.subgraph(mask, y=y, node_y=node_y, meta={"sample": s})
        items.append(LabeledSample(sample=s, graph=graph))
    return items


def build_dataset(
    design: PreparedDesign,
    mode: str,
    n_samples: int,
    seed: int,
    kind: str = "single",
    miv_fraction: float = 0.15,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> SampleSet:
    """Inject faults, record failure logs, back-trace, and featurize.

    The serial reference build: iterates the canonical chunk grid in order.
    :meth:`repro.runtime.DatasetRuntime.build_dataset` runs the same grid
    with caching and worker fan-out and returns byte-identical results.

    Args:
        design: Prepared (benchmark, config) bundle.
        mode: Observation mode, ``"bypass"`` or ``"compacted"``.
        n_samples: Target number of failing chips.
        seed: Master seed; per-chunk sampler seeds derive from it.
        kind: ``"single"``, ``"multi"``, or ``"miv"``.
        miv_fraction: MIV share for ``kind="single"``.
        chunk_size: Samples per work unit; part of the dataset definition
            (changing it changes the RNG stream boundaries).

    Returns:
        A :class:`SampleSet`; samples whose back-trace yields an empty
        sub-graph are skipped.
    """
    items: List[LabeledSample] = []
    for chunk_index, chunk_n in chunk_plan(n_samples, chunk_size):
        items.extend(
            build_dataset_chunk(design, mode, chunk_index, chunk_n, seed, kind, miv_fraction)
        )
    return SampleSet(design=design, mode=mode, items=items)
