"""Diagnosis datasets: injected samples paired with back-trace sub-graphs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..atpg.faults import Fault, site_tier
from ..m3d.defects import DefectSampler
from ..nn.data import GraphData
from ..tester.injection import InjectionCampaign, Sample
from ..core.backtrace import backtrace
from .datagen import PreparedDesign

__all__ = ["LabeledSample", "SampleSet", "build_dataset"]


@dataclass
class LabeledSample:
    """One failing chip together with its GNN-ready sub-graph."""

    sample: Sample
    graph: GraphData

    @property
    def faults(self) -> Tuple[Fault, ...]:
        return self.sample.faults


@dataclass
class SampleSet:
    """A dataset of labeled samples for one (design, observation-mode) pair."""

    design: PreparedDesign
    mode: str
    items: List[LabeledSample]

    def __len__(self) -> int:
        return len(self.items)

    @property
    def graphs(self) -> List[GraphData]:
        return [it.graph for it in self.items]

    @property
    def samples(self) -> List[Sample]:
        return [it.sample for it in self.items]


def _graph_labels(design: PreparedDesign, faults: Sequence[Fault]) -> Tuple[int, np.ndarray]:
    """Graph-level tier label and per-node MIV labels for injected faults.

    The tier label is the tier containing the gate-level fault(s); MIV-only
    samples carry -1 (MIVs span tiers).  Node labels flag the faulty MIV
    nodes in HetGraph index space.
    """
    het = design.het
    tiers = {site_tier(design.nl, f.site) for f in faults}
    tiers.discard(None)
    y = int(next(iter(tiers))) if len(tiers) == 1 else -1
    node_y = np.zeros(het.n_nodes)
    for f in faults:
        if f.site.kind == "miv":
            v = het.miv_index.get(f.site.miv_id)
            if v is not None:
                node_y[v] = 1.0
    return y, node_y


def build_dataset(
    design: PreparedDesign,
    mode: str,
    n_samples: int,
    seed: int,
    kind: str = "single",
    miv_fraction: float = 0.15,
) -> SampleSet:
    """Inject faults, record failure logs, back-trace, and featurize.

    Args:
        design: Prepared (benchmark, config) bundle.
        mode: Observation mode, ``"bypass"`` or ``"compacted"``.
        n_samples: Target number of failing chips.
        seed: Defect-sampler seed.
        kind: ``"single"`` (one TDF; ``miv_fraction`` of them in MIVs),
            ``"multi"`` (2–5 tier-systematic TDFs), or ``"miv"`` (MIV-only).
        miv_fraction: MIV share for ``kind="single"``.

    Returns:
        A :class:`SampleSet`; samples whose back-trace yields an empty
        sub-graph are skipped.
    """
    obsmap = design.obsmap(mode)
    sampler = DefectSampler(design.nl, design.mivs, seed=seed)
    campaign = InjectionCampaign(design.machine, design.good, obsmap, sampler)
    if kind == "single":
        raw = campaign.single_fault_samples(n_samples, miv_fraction=miv_fraction)
    elif kind == "multi":
        raw = campaign.multi_fault_samples(n_samples)
    elif kind == "miv":
        raw = campaign.miv_fault_samples(n_samples)
    else:
        raise ValueError(f"unknown dataset kind {kind!r}")

    items: List[LabeledSample] = []
    for s in raw:
        mask = backtrace(design.het, obsmap, s.log)
        if not mask.any():
            continue
        y, node_y = _graph_labels(design, s.faults)
        graph = design.extractor.subgraph(mask, y=y, node_y=node_y, meta={"sample": s})
        items.append(LabeledSample(sample=s, graph=graph))
    return SampleSet(design=design, mode=mode, items=items)
