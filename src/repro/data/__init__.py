"""Dataset generation: the Fig. 4 flow and labeled sample sets."""

from .datagen import CONFIG_NAMES, DesignConfig, PreparedDesign, prepare_design
from .datasets import LabeledSample, SampleSet, build_dataset

__all__ = [
    "CONFIG_NAMES",
    "DesignConfig",
    "PreparedDesign",
    "prepare_design",
    "LabeledSample",
    "SampleSet",
    "build_dataset",
]
