"""Monolithic inter-tier via (MIV) extraction and fault sites.

After tier assignment, every net whose driver and some destination sit on
different tiers routes through one MIV.  A delay defect in an MIV disturbs
exactly the destinations on the far side of the via, which is how the fault
simulator models it (a sink-subset fault).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..atpg.faults import FaultSite
from ..netlist.netlist import Netlist

__all__ = ["MIV", "extract_mivs", "miv_fault_sites", "miv_net_set"]

PinRef = Tuple[int, int]


@dataclass(frozen=True)
class MIV:
    """One monolithic inter-tier via.

    Attributes:
        id: Dense MIV index within the design.
        net: The tier-crossing net routed through this via.
        source_tier: Tier of the net's driver.
        target_tier: Tier the via lands on (multi-tier designs route one MIV
            per destination tier of a net).
        far_sinks: Gate input pins on the target tier (disturbed by an MIV
            fault).
        observed_faulty: True when a target-tier flop D pin or a primary
            output observes the net through this via.
    """

    id: int
    net: int
    source_tier: int
    far_sinks: Tuple[PinRef, ...]
    observed_faulty: bool
    target_tier: int = -1


def extract_mivs(nl: Netlist) -> List[MIV]:
    """All MIVs of a tier-assigned netlist, ordered by (net, target tier).

    Two-tier designs get at most one MIV per cut net; designs with more
    tiers get one MIV per (net, destination tier) crossing.

    Raises:
        ValueError: if any gate or flop has no tier assignment.
    """
    if any(g.tier < 0 for g in nl.gates) or any(f.tier < 0 for f in nl.flops):
        raise ValueError("netlist is not fully tier-assigned; run a partitioner first")

    d_tier: Dict[int, List[int]] = {}
    for f in nl.flops:
        d_tier.setdefault(f.d_net, []).append(f.tier)
    pos = set(nl.primary_outputs)

    mivs: List[MIV] = []
    for net in nl.nets:
        src = nl.net_tier(net.id)
        far_by_tier: Dict[int, List[PinRef]] = {}
        for gate_id, pin in net.sinks:
            t = nl.gates[gate_id].tier
            if t != src:
                far_by_tier.setdefault(t, []).append((gate_id, pin))
        observed_tiers = {t for t in d_tier.get(net.id, ()) if t != src}
        if net.id in pos and src != 0:
            observed_tiers.add(0)  # primary outputs pad out on the bottom tier
        for t in sorted(set(far_by_tier) | observed_tiers):
            mivs.append(
                MIV(
                    id=len(mivs),
                    net=net.id,
                    source_tier=src,
                    far_sinks=tuple(far_by_tier.get(t, ())),
                    observed_faulty=t in observed_tiers,
                    target_tier=t,
                )
            )
    return mivs


def miv_fault_sites(nl: Netlist, mivs: Sequence[MIV]) -> List[FaultSite]:
    """Fault sites for every MIV (kind ``"miv"``)."""
    return [
        FaultSite(
            kind="miv",
            net=m.net,
            sinks=m.far_sinks,
            observed_faulty=m.observed_faulty,
            miv_id=m.id,
            label=f"miv:{m.id}@{nl.nets[m.net].name}",
        )
        for m in mivs
    ]


def miv_net_set(mivs: Sequence[MIV]) -> Set[int]:
    """Net ids that carry an MIV (used for Topedge N_MIV features)."""
    return {m.net for m in mivs}
