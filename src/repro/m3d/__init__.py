"""Monolithic-3D substrate: tier partitioning, MIVs, defect models."""

from .partition import PartitionResult, apply_partition, cut_nets, kway_partition, mincut_bipartition
from .spectral import spectral_bipartition
from .random_part import random_bipartition
from .miv import MIV, extract_mivs, miv_fault_sites, miv_net_set
from .defects import DefectSampler

__all__ = [
    "PartitionResult",
    "apply_partition",
    "cut_nets",
    "mincut_bipartition",
    "kway_partition",
    "spectral_bipartition",
    "random_bipartition",
    "MIV",
    "extract_mivs",
    "miv_fault_sites",
    "miv_net_set",
    "DefectSampler",
]
