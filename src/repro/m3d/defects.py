"""M3D-specific defect models.

The paper's motivation: immature M3D fabrication produces *tier-systematic*
delay defects — low-temperature top-tier devices degrade, tungsten inter-tier
wiring slows the bottom tier, and MIVs develop voids.  These samplers produce
the fault populations the evaluation injects:

* single gate-level TDFs drawn uniformly (or biased toward one tier),
* MIV TDFs,
* tier-systematic *multi-fault* clusters (2–5 TDFs confined to one tier),
  used by the Table X experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..atpg.faults import Fault, FaultSite, Polarity, enumerate_sites, site_tier
from ..netlist.netlist import Netlist
from .miv import MIV, miv_fault_sites

__all__ = ["DefectSampler"]


class DefectSampler:
    """Seeded sampler over a design's fault population.

    Args:
        nl: Tier-assigned design.
        mivs: The design's MIVs.
        seed: RNG seed; every sample sequence is deterministic.
        rng: Pre-seeded generator used instead of ``random.Random(seed)``;
            the caller owns its state.
    """

    def __init__(
        self,
        nl: Netlist,
        mivs: Sequence[MIV],
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.nl = nl
        self.rng = rng if rng is not None else random.Random(seed)
        self.gate_sites: List[FaultSite] = enumerate_sites(nl, mivs=(), include_branches=True)
        self.miv_sites: List[FaultSite] = miv_fault_sites(nl, mivs)
        tiers = sorted({t for t in (site_tier(nl, s) for s in self.gate_sites) if t is not None})
        self._sites_by_tier = {
            t: [s for s in self.gate_sites if site_tier(nl, s) == t] for t in tiers
        }
        self.tiers = tiers

    def _polarity(self) -> Polarity:
        return self.rng.choice((Polarity.SLOW_TO_RISE, Polarity.SLOW_TO_FALL))

    def sample_gate_fault(self, tier: Optional[int] = None) -> Fault:
        """One TDF at a gate-pin site, optionally restricted to a tier."""
        pool = self.gate_sites if tier is None else self._sites_by_tier[tier]
        return Fault(self.rng.choice(pool), self._polarity())

    def sample_miv_fault(self) -> Fault:
        """One TDF in a randomly chosen MIV."""
        if not self.miv_sites:
            raise ValueError("design has no MIVs")
        return Fault(self.rng.choice(self.miv_sites), self._polarity())

    def sample_single(self, miv_fraction: float = 0.0) -> Fault:
        """One TDF; with probability ``miv_fraction`` it sits in an MIV."""
        if self.miv_sites and self.rng.random() < miv_fraction:
            return self.sample_miv_fault()
        return self.sample_gate_fault()

    def sample_tier_systematic(self, n_min: int = 2, n_max: int = 5) -> List[Fault]:
        """A cluster of 2–5 TDFs confined to one (randomly chosen) tier.

        Models the tier-systematic defects of Section VII-A.  Sites within the
        cluster are distinct.
        """
        tier = self.rng.choice(self.tiers)
        pool = self._sites_by_tier[tier]
        n = self.rng.randint(n_min, min(n_max, len(pool)))
        sites = self.rng.sample(pool, n)
        return [Fault(s, self._polarity()) for s in sites]
