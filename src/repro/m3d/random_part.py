"""Random balanced tier partitioning.

Used for the paper's data-augmentation method: training samples are drawn
from randomly-partitioned M3D netlists so the GNN models see a wide variety
of spatial gate distributions and do not overfit any one partitioner.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..netlist.netlist import Netlist
from .partition import FLOP_AREA, PartitionResult, _areas, _cut_count, _hyperedges

__all__ = ["random_bipartition"]


def random_bipartition(
    nl: Netlist, seed: int = 0, rng: Optional[random.Random] = None
) -> PartitionResult:
    """Assign tiers uniformly at random subject to area balance.

    ``rng`` injects a pre-seeded generator in place of
    ``random.Random(seed)``; the caller owns its state.
    """
    rng = rng if rng is not None else random.Random(seed)
    n_gates = nl.n_gates
    n_vertices = n_gates + nl.n_flops
    areas = _areas(nl)
    total_area = sum(areas) or 1.0

    order = list(range(n_vertices))
    rng.shuffle(order)
    tier = [0] * n_vertices
    top_area = 0.0
    for v in order:
        if top_area < total_area / 2:
            tier[v] = 1
            top_area += areas[v]

    edges = _hyperedges(nl)
    return PartitionResult(
        gate_tiers=tier[:n_gates],
        flop_tiers=tier[n_gates:],
        cut=_cut_count(edges, tier),
        balance=top_area / total_area,
        method="random",
    )
