"""Area-balanced min-cut tier partitioning (Syn-1 default flow).

Stand-in for the placement-driven partitioner of Panth et al. [34]: a
Fiduccia–Mattheyses-style iterative refinement over the netlist hypergraph.
Vertices are gates and flops; every net is a hyperedge over its driver and
sinks; nets touching primary I/O also contain a terminal pinned to the bottom
tier (pads sit on tier 0).  The cut size equals the number of inter-tier nets
and therefore the MIV count.

The refinement moves one vertex at a time when the move reduces the cut and
keeps the per-tier area within the balance tolerance, sweeping vertices in a
seeded random order until a fixed point (or the pass budget) is reached.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..netlist.netlist import EXTERNAL_DRIVER, Netlist

__all__ = ["PartitionResult", "mincut_bipartition", "kway_partition", "apply_partition", "cut_nets"]

#: Vertex id of the pinned bottom-tier terminal representing primary I/O.
_IO_TERMINAL = -1

#: Flops are larger than the average combinational cell.
FLOP_AREA = 2.0


@dataclass
class PartitionResult:
    """Tier assignment for every gate and flop.

    Attributes:
        gate_tiers: Tier (0 bottom / 1 top) per gate id.
        flop_tiers: Tier per flop id.
        cut: Number of tier-crossing nets (= MIV count).
        balance: Top-tier area fraction.
        method: Name of the partitioning algorithm used.
    """

    gate_tiers: List[int]
    flop_tiers: List[int]
    cut: int
    balance: float
    method: str


def _hyperedges(nl: Netlist) -> List[List[int]]:
    """Hyperedges over vertex ids: gates 0..G-1, flops G..G+F-1, I/O terminal -1."""
    n_gates = nl.n_gates
    flop_vertex = {f.id: n_gates + f.id for f in nl.flops}
    q_of_net = {f.q_net: f.id for f in nl.flops}
    d_sinks: Dict[int, List[int]] = {}
    for f in nl.flops:
        d_sinks.setdefault(f.d_net, []).append(flop_vertex[f.id])
    pis = set(nl.primary_inputs)
    pos = set(nl.primary_outputs)

    edges: List[List[int]] = []
    for net in nl.nets:
        members: Set[int] = set()
        if net.driver != EXTERNAL_DRIVER:
            members.add(net.driver)
        elif net.id in q_of_net:
            members.add(flop_vertex[q_of_net[net.id]])
        elif net.id in pis:
            members.add(_IO_TERMINAL)
        for gate_id, _pin in net.sinks:
            members.add(gate_id)
        members.update(d_sinks.get(net.id, ()))
        if net.id in pos:
            members.add(_IO_TERMINAL)
        if len(members) >= 2:
            edges.append(sorted(members))
    return edges


def _areas(nl: Netlist) -> List[float]:
    return [g.cell.area for g in nl.gates] + [FLOP_AREA] * nl.n_flops


def _cut_count(edges: Sequence[Sequence[int]], tier_of) -> int:
    cut = 0
    for members in edges:
        tiers = {0 if v == _IO_TERMINAL else tier_of[v] for v in members}
        if len(tiers) > 1:
            cut += 1
    return cut


def mincut_bipartition(
    nl: Netlist,
    seed: int = 0,
    balance_tolerance: float = 0.08,
    max_passes: int = 6,
    rng: Optional[random.Random] = None,
) -> PartitionResult:
    """Partition gates and flops into two tiers minimizing the net cut.

    Args:
        nl: Design to partition.
        seed: Seed for the initial random balanced assignment and sweep order.
        balance_tolerance: Allowed deviation of the top-tier area fraction
            from 0.5.
        max_passes: Refinement sweep budget.
        rng: Pre-seeded generator used instead of ``random.Random(seed)``;
            the caller owns its state.
    """
    rng = rng if rng is not None else random.Random(seed)
    n_gates = nl.n_gates
    n_vertices = n_gates + nl.n_flops
    areas = _areas(nl)
    total_area = sum(areas) or 1.0
    edges = _hyperedges(nl)

    incident: List[List[int]] = [[] for _ in range(n_vertices)]
    for eid, members in enumerate(edges):
        for v in members:
            if v != _IO_TERMINAL:
                incident[v].append(eid)

    # Random balanced initial assignment.
    order = list(range(n_vertices))
    rng.shuffle(order)
    tier = [0] * n_vertices
    top_area = 0.0
    for v in order:
        if top_area < total_area / 2:
            tier[v] = 1
            top_area += areas[v]

    def move_delta(v: int) -> int:
        """Cut change if vertex v flips tier (negative = improvement)."""
        delta = 0
        for eid in incident[v]:
            others = {
                0 if u == _IO_TERMINAL else tier[u]
                for u in edges[eid]
                if u != v
            }
            if not others:
                continue
            was_cut = len(others | {tier[v]}) > 1
            now_cut = len(others | {1 - tier[v]}) > 1
            delta += int(now_cut) - int(was_cut)
        return delta

    lo = total_area * (0.5 - balance_tolerance)
    hi = total_area * (0.5 + balance_tolerance)
    for _ in range(max_passes):
        rng.shuffle(order)
        moved = 0
        for v in order:
            new_top = top_area + (areas[v] if tier[v] == 0 else -areas[v])
            if not lo <= new_top <= hi:
                continue
            if move_delta(v) < 0:
                tier[v] = 1 - tier[v]
                top_area = new_top
                moved += 1
        if moved == 0:
            break

    return PartitionResult(
        gate_tiers=tier[:n_gates],
        flop_tiers=tier[n_gates:],
        cut=_cut_count(edges, tier),
        balance=top_area / total_area,
        method="mincut",
    )


def kway_partition(
    nl: Netlist,
    k: int,
    seed: int = 0,
    balance_tolerance: float = 0.10,
    max_passes: int = 6,
    rng: Optional[random.Random] = None,
) -> PartitionResult:
    """Partition into ``k`` tiers by move-based cut refinement.

    Generalizes :func:`mincut_bipartition` for the paper's >2-tier
    extension: a random balanced k-way assignment refined by moving vertices
    to the tier that minimizes the number of multi-tier nets, subject to
    per-tier area balance.  ``rng`` injects a pre-seeded generator in place
    of ``random.Random(seed)``.
    """
    if k < 2:
        raise ValueError("k-way partitioning needs k >= 2")
    rng = rng if rng is not None else random.Random(seed)
    n_gates = nl.n_gates
    n_vertices = n_gates + nl.n_flops
    areas = _areas(nl)
    total_area = sum(areas) or 1.0
    edges = _hyperedges(nl)
    incident: List[List[int]] = [[] for _ in range(n_vertices)]
    for eid, members in enumerate(edges):
        for v in members:
            if v != _IO_TERMINAL:
                incident[v].append(eid)

    order = list(range(n_vertices))
    rng.shuffle(order)
    tier = [0] * n_vertices
    tier_area = [0.0] * k
    target = total_area / k
    t = 0
    for v in order:
        while tier_area[t] >= target and t < k - 1:
            t += 1
        tier[v] = t
        tier_area[t] += areas[v]

    lo = target * (1 - k * balance_tolerance)
    hi = target * (1 + k * balance_tolerance)

    def edge_cut_with(v: int, vt: int, eid: int) -> bool:
        tiers = set()
        for u in edges[eid]:
            if u == _IO_TERMINAL:
                tiers.add(0)
            elif u == v:
                tiers.add(vt)
            else:
                tiers.add(tier[u])
        return len(tiers) > 1

    for _ in range(max_passes):
        rng.shuffle(order)
        moved = 0
        for v in order:
            cur = tier[v]
            best_t, best_cut = cur, sum(edge_cut_with(v, cur, e) for e in incident[v])
            for cand in range(k):
                if cand == cur:
                    continue
                new_area = tier_area[cand] + areas[v]
                if not lo <= new_area <= hi or tier_area[cur] - areas[v] < lo:
                    continue
                cut = sum(edge_cut_with(v, cand, e) for e in incident[v])
                if cut < best_cut:
                    best_t, best_cut = cand, cut
            if best_t != cur:
                tier_area[cur] -= areas[v]
                tier_area[best_t] += areas[v]
                tier[v] = best_t
                moved += 1
        if moved == 0:
            break

    return PartitionResult(
        gate_tiers=tier[:n_gates],
        flop_tiers=tier[n_gates:],
        cut=_cut_count(edges, tier),
        balance=max(tier_area) / total_area,
        method=f"kway{k}",
    )


def apply_partition(nl: Netlist, part: PartitionResult) -> None:
    """Write the tier assignment onto the netlist's gates and flops (in place)."""
    if len(part.gate_tiers) != nl.n_gates or len(part.flop_tiers) != nl.n_flops:
        raise ValueError("partition size does not match netlist")
    for g, t in zip(nl.gates, part.gate_tiers):
        g.tier = t
    for f, t in zip(nl.flops, part.flop_tiers):
        f.tier = t


def cut_nets(nl: Netlist) -> List[int]:
    """Net ids that cross tiers on a tier-assigned netlist."""
    d_tiers: Dict[int, List[int]] = {}
    for f in nl.flops:
        d_tiers.setdefault(f.d_net, []).append(f.tier)
    pos = set(nl.primary_outputs)
    out: List[int] = []
    for net in nl.nets:
        tiers = {nl.net_tier(net.id)}
        for gate_id, _pin in net.sinks:
            tiers.add(nl.gates[gate_id].tier)
        tiers.update(d_tiers.get(net.id, ()))
        if net.id in pos:
            tiers.add(0)
        if len(tiers) > 1:
            out.append(net.id)
    return out
