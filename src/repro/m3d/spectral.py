"""Spectral tier partitioning (the paper's "Par" configuration).

Stand-in for the alternative M3D partitioner (TP-GNN [35]): bipartition by
the Fiedler vector of the clique-expanded netlist graph, with an area-
balancing threshold sweep.  It produces a *different* spatial distribution of
gates over tiers than the min-cut refinement in
:mod:`repro.m3d.partition`, which is exactly what the transferability study
needs.
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..netlist.netlist import Netlist
from .partition import FLOP_AREA, PartitionResult, _areas, _cut_count, _hyperedges

__all__ = ["spectral_bipartition"]


def spectral_bipartition(
    nl: Netlist, seed: int = 0, balance_tolerance: float = 0.08
) -> PartitionResult:
    """Partition via the second Laplacian eigenvector, balanced by area.

    Falls back to a seeded random balanced split when the eigensolver cannot
    converge (tiny or degenerate graphs).
    """
    n_gates = nl.n_gates
    n_vertices = n_gates + nl.n_flops
    edges = _hyperedges(nl)
    areas = _areas(nl)
    total_area = sum(areas) or 1.0

    rows: List[int] = []
    cols: List[int] = []
    for members in edges:
        internal = [v for v in members if v >= 0]
        if len(internal) < 2:
            continue
        w = 1.0 / (len(internal) - 1)
        hub = internal[0]
        for v in internal[1:]:
            rows.extend((hub, v))
            cols.extend((v, hub))
    data = np.ones(len(rows))
    adj = sp.csr_matrix((data, (rows, cols)), shape=(n_vertices, n_vertices))
    deg = np.asarray(adj.sum(axis=1)).ravel()
    lap = sp.diags(deg) - adj

    rng = np.random.default_rng(seed)
    try:
        v0 = rng.standard_normal(n_vertices)
        _vals, vecs = spla.eigsh(lap.asfptype(), k=2, sigma=-1e-6, which="LM", v0=v0)
        fiedler = vecs[:, 1]
    except Exception:
        fiedler = rng.standard_normal(n_vertices)

    # Sweep the split threshold along the sorted Fiedler values to hit balance.
    order = np.argsort(fiedler, kind="stable")
    tier = [0] * n_vertices
    top_area = 0.0
    for v in order:
        if top_area + areas[v] <= total_area * (0.5 + balance_tolerance) and (
            top_area < total_area / 2
        ):
            tier[int(v)] = 1
            top_area += areas[int(v)]

    return PartitionResult(
        gate_tiers=tier[:n_gates],
        flop_tiers=tier[n_gates:],
        cut=_cut_count(edges, tier),
        balance=top_area / total_area,
        method="spectral",
    )
