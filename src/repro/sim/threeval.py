"""Three-valued (0/1/X) full-netlist simulation.

Pattern generators and DfT analyses often need to reason about partially
specified vectors — which nets are forced by the specified bits and which
remain unknown.  This simulator propagates the third value X exactly
(per-gate completion enumeration for non-decomposable cells), one pattern
at a time; for fully specified bulk simulation use the bit-parallel
:class:`~repro.sim.logicsim.CompiledSimulator` instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..netlist.netlist import Netlist

__all__ = ["X", "simulate3", "forced_nets"]

#: The unknown value.
X = 2


def simulate3(nl: Netlist, assignment: Dict[int, int]) -> np.ndarray:
    """Propagate a partial input assignment through the core.

    Args:
        nl: The design.
        assignment: Net id → 0/1 for the specified combinational inputs;
            unassigned inputs are X.

    Returns:
        int8 array over nets with values 0, 1, or ``X`` (2).

    Raises:
        ValueError: if the assignment references a non-input net or a value
            outside {0, 1}.
    """
    from ..atpg.podem import _eval3  # shared exact 3-valued cell evaluation

    inputs = set(nl.comb_inputs)
    values = np.full(nl.n_nets, X, dtype=np.int8)
    for net, v in assignment.items():
        if net not in inputs:
            raise ValueError(f"net {net} is not a combinational input")
        if v not in (0, 1):
            raise ValueError(f"input value must be 0 or 1, got {v!r}")
        values[net] = v
    for gid in nl.topo_order():
        g = nl.gates[gid]
        values[g.out] = _eval3(g.cell, [int(values[n]) for n in g.fanin])
    return values


def forced_nets(nl: Netlist, assignment: Dict[int, int]) -> Dict[int, int]:
    """Nets driven to a binary value by a partial assignment.

    Useful for measuring how much of the design a compressed/partial test
    cube actually controls.
    """
    values = simulate3(nl, assignment)
    return {int(n): int(v) for n, v in enumerate(values) if v != X}
