"""Transition-delay-fault simulation.

Implements the standard TDF detection approximation on top of the
bit-parallel good-machine values: launch (a matching transition at the fault
site) plus capture (the late value, modeled as the complemented V2 value at
the site, propagating to an observation point).  Only the fan-out cone of the
fault is re-evaluated per fault, with per-pin overrides so branch and MIV
faults disturb exactly their subset of sinks.

When the good-machine result is bit-packed (the default engine), the whole
launch/inject/propagate pipeline stays in packed uint64 words — 64 patterns
per word — and detection masks are unpacked only at the end, so the public
contract (boolean per-pattern masks) is unchanged.  Fault sites recur across
patterns, configurations, and multi-fault draws, so the machine caches each
site's start-gate tuple and the simulator memoizes the fan-out cones.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..atpg.faults import Fault, FaultSite, Polarity
from .bitpack import int_to_bits
from .logicsim import CompiledSimulator, TwoPatternResult

__all__ = ["FaultMachine"]


def _ints_to_masks(diffs: Dict[int, int], n_patterns: int, n_words: int) -> Dict[int, np.ndarray]:
    """Unpack per-observation big-int diffs into boolean masks in one shot."""
    if not diffs:
        return {}
    row_bytes = n_words * 8
    obs_ids = list(diffs)
    blob = b"".join(diffs[o].to_bytes(row_bytes, "little") for o in obs_ids)
    rows = np.frombuffer(blob, dtype=np.uint8).reshape(len(obs_ids), row_bytes)
    bits = np.unpackbits(rows, axis=1, bitorder="little", count=n_patterns).astype(bool)
    return {o: bits[i] for i, o in enumerate(obs_ids)}


class FaultMachine:
    """Simulates single TDFs against a fixed good-machine result."""

    def __init__(self, sim: CompiledSimulator) -> None:
        self.sim = sim
        self.nl = sim.nl
        self.observed: List[int] = self.nl.observed_nets
        self._observed_set = frozenset(self.observed)
        #: Per-fault-site start-gate tuples (sinks sorted/deduped once).
        self._site_starts: Dict[FaultSite, Tuple[int, ...]] = {}

    # ---------------------------------------------------------------- shared
    def _start_gates(self, site: FaultSite) -> Tuple[int, ...]:
        starts = self._site_starts.get(site)
        if starts is None:
            starts = tuple(sorted({g for (g, _p) in site.sinks}))
            self._site_starts[site] = starts
        return starts

    def activation_mask(self, fault: Fault, good: TwoPatternResult) -> np.ndarray:
        """Patterns whose transition at the site matches the fault polarity."""
        net = fault.site.net
        if fault.polarity is Polarity.SLOW_TO_RISE:
            return (good.v1[net] == 0) & (good.v2[net] == 1)
        return (good.v1[net] == 1) & (good.v2[net] == 0)

    def _activation_int(self, fault: Fault, good: TwoPatternResult) -> int:
        """Packed counterpart of :meth:`activation_mask` (tail bits zero).

        V1 and V2 of the same net carry identical tail bits, so the
        launch-transition word is tail-clean without explicit masking.
        """
        net = fault.site.net
        iv1, iv2 = good.v1_ints()[net], good.v2_ints()[net]
        if fault.polarity is Polarity.SLOW_TO_RISE:
            return (good.full_mask ^ iv1) & iv2
        return iv1 & (good.full_mask ^ iv2)

    # ------------------------------------------------------------- propagate
    def propagate(self, fault: Fault, good: TwoPatternResult) -> Dict[int, np.ndarray]:
        """Per-observation detection masks for one fault.

        Returns:
            Mapping observed-net id → boolean array over patterns, containing
            only observations where the fault is detected at least once.
        """
        if good.is_packed:
            return self._propagate_packed(fault, good)
        site = fault.site
        mask = self.activation_mask(fault, good)
        if not mask.any():
            return {}
        faulty_site = good.v2[site.net] ^ mask.astype(np.uint8)
        input_override = {(g, p): faulty_site for (g, p) in site.sinks}
        modified = self.sim.resimulate_with_overrides(
            good.v2, self._start_gates(site), input_override
        )
        detections: Dict[int, np.ndarray] = {}
        for obs in self.observed:
            diff = None
            if obs in modified:
                diff = modified[obs] != good.v2[obs]
            if site.observed_faulty and obs == site.net:
                site_diff = mask.copy()
                diff = site_diff if diff is None else (diff | site_diff)
            if diff is not None and diff.any():
                detections[obs] = diff
        return detections

    def _propagate_ints(self, fault: Fault, good: TwoPatternResult) -> Dict[int, int]:
        """Packed propagate core: observed-net id → big-int difference word."""
        site = fault.site
        act = self._activation_int(fault, good)
        if not act:
            return {}
        iv2 = good.v2_ints()
        faulty_site = iv2[site.net] ^ act
        input_override = {(g, p): faulty_site for (g, p) in site.sinks}
        fn = self.sim.propagation_fn(self._start_gates(site))
        diffs: Dict[int, int] = fn(iv2, input_override, good.full_mask, good.valid_mask)
        if site.observed_faulty and site.net in self._observed_set:
            diffs[site.net] = diffs.get(site.net, 0) | act
        return diffs

    def _propagate_packed(self, fault: Fault, good: TwoPatternResult) -> Dict[int, np.ndarray]:
        diffs = self._propagate_ints(fault, good)
        return _ints_to_masks(diffs, good.n_patterns, good.n_words)

    def propagate_multi(
        self, faults: List[Fault], good: TwoPatternResult
    ) -> Dict[int, np.ndarray]:
        """Simultaneous propagation of several TDFs (tier-systematic defects).

        Each site's launch condition is evaluated on the good machine (a
        first-order approximation that ignores fault-on-fault activation
        changes, standard for diagnosis data generation); all faulty values
        are then injected together and the union fan-out cone re-evaluated,
        so downstream interaction and masking between the faults is exact.
        """
        if good.is_packed:
            return self._propagate_multi_packed(faults, good)
        input_override: Dict[tuple, np.ndarray] = {}
        start_gates: set = set()
        any_active = False
        observed_flip: Dict[int, np.ndarray] = {}
        for fault in faults:
            site = fault.site
            mask = self.activation_mask(fault, good)
            if not mask.any():
                continue
            any_active = True
            faulty_site = good.v2[site.net] ^ mask.astype(np.uint8)
            for g, p in site.sinks:
                input_override[(g, p)] = faulty_site
                start_gates.add(g)
            if site.observed_faulty:
                prev = observed_flip.get(site.net)
                observed_flip[site.net] = mask if prev is None else (prev | mask)
        if not any_active:
            return {}
        modified = self.sim.resimulate_with_overrides(
            good.v2, sorted(start_gates), input_override
        )
        detections: Dict[int, np.ndarray] = {}
        for obs in self.observed:
            diff = None
            if obs in modified:
                diff = modified[obs] != good.v2[obs]
            if obs in observed_flip:
                diff = observed_flip[obs] if diff is None else (diff | observed_flip[obs])
            if diff is not None and diff.any():
                detections[obs] = diff
        return detections

    def _propagate_multi_packed(
        self, faults: List[Fault], good: TwoPatternResult
    ) -> Dict[int, np.ndarray]:
        iv2 = good.v2_ints()
        input_override: Dict[Tuple[int, int], int] = {}
        start_gates: set = set()
        any_active = False
        observed_flip: Dict[int, int] = {}
        for fault in faults:
            site = fault.site
            act = self._activation_int(fault, good)
            if not act:
                continue
            any_active = True
            faulty_site = iv2[site.net] ^ act
            for g, p in site.sinks:
                input_override[(g, p)] = faulty_site
                start_gates.add(g)
            if site.observed_faulty:
                observed_flip[site.net] = observed_flip.get(site.net, 0) | act
        if not any_active:
            return {}
        fn = self.sim.propagation_fn(sorted(start_gates))
        diffs: Dict[int, int] = fn(iv2, input_override, good.full_mask, good.valid_mask)
        observed = self._observed_set
        for net, flip in observed_flip.items():
            if net in observed:
                merged = diffs.get(net, 0) | flip
                if merged:
                    diffs[net] = merged
        return _ints_to_masks(diffs, good.n_patterns, good.n_words)

    def detects(self, fault: Fault, good: TwoPatternResult) -> np.ndarray:
        """Boolean per-pattern mask: fault detected at any observation."""
        if good.is_packed:
            word = 0
            for diff in self._propagate_ints(fault, good).values():
                word |= diff
            if not word:
                return np.zeros(good.n_patterns, dtype=bool)
            return int_to_bits(word, good.n_patterns).astype(bool)
        out = np.zeros(good.n_patterns, dtype=bool)
        for diff in self.propagate(fault, good).values():
            out |= diff
        return out
