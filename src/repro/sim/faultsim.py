"""Transition-delay-fault simulation.

Implements the standard TDF detection approximation on top of the
bit-parallel good-machine values: launch (a matching transition at the fault
site) plus capture (the late value, modeled as the complemented V2 value at
the site, propagating to an observation point).  Only the fan-out cone of the
fault is re-evaluated per fault, with per-pin overrides so branch and MIV
faults disturb exactly their subset of sinks.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..atpg.faults import Fault, FaultSite, Polarity
from .logicsim import CompiledSimulator, TwoPatternResult

__all__ = ["FaultMachine"]


class FaultMachine:
    """Simulates single TDFs against a fixed good-machine result."""

    def __init__(self, sim: CompiledSimulator) -> None:
        self.sim = sim
        self.nl = sim.nl
        self.observed: List[int] = self.nl.observed_nets

    def activation_mask(self, fault: Fault, good: TwoPatternResult) -> np.ndarray:
        """Patterns whose transition at the site matches the fault polarity."""
        net = fault.site.net
        if fault.polarity is Polarity.SLOW_TO_RISE:
            return (good.v1[net] == 0) & (good.v2[net] == 1)
        return (good.v1[net] == 1) & (good.v2[net] == 0)

    def propagate(self, fault: Fault, good: TwoPatternResult) -> Dict[int, np.ndarray]:
        """Per-observation detection masks for one fault.

        Returns:
            Mapping observed-net id → boolean array over patterns, containing
            only observations where the fault is detected at least once.
        """
        site = fault.site
        mask = self.activation_mask(fault, good)
        if not mask.any():
            return {}
        faulty_site = good.v2[site.net] ^ mask.astype(np.uint8)
        input_override = {(g, p): faulty_site for (g, p) in site.sinks}
        start_gates = sorted({g for (g, _p) in site.sinks})
        modified = self.sim.resimulate_with_overrides(
            good.v2, start_gates, input_override
        )
        detections: Dict[int, np.ndarray] = {}
        for obs in self.observed:
            diff = None
            if obs in modified:
                diff = modified[obs] != good.v2[obs]
            if site.observed_faulty and obs == site.net:
                site_diff = mask.copy()
                diff = site_diff if diff is None else (diff | site_diff)
            if diff is not None and diff.any():
                detections[obs] = diff
        return detections

    def propagate_multi(
        self, faults: List[Fault], good: TwoPatternResult
    ) -> Dict[int, np.ndarray]:
        """Simultaneous propagation of several TDFs (tier-systematic defects).

        Each site's launch condition is evaluated on the good machine (a
        first-order approximation that ignores fault-on-fault activation
        changes, standard for diagnosis data generation); all faulty values
        are then injected together and the union fan-out cone re-evaluated,
        so downstream interaction and masking between the faults is exact.
        """
        input_override: Dict[tuple, np.ndarray] = {}
        start_gates: set = set()
        any_active = False
        observed_flip: Dict[int, np.ndarray] = {}
        for fault in faults:
            site = fault.site
            mask = self.activation_mask(fault, good)
            if not mask.any():
                continue
            any_active = True
            faulty_site = good.v2[site.net] ^ mask.astype(np.uint8)
            for g, p in site.sinks:
                input_override[(g, p)] = faulty_site
                start_gates.add(g)
            if site.observed_faulty:
                prev = observed_flip.get(site.net)
                observed_flip[site.net] = mask if prev is None else (prev | mask)
        if not any_active:
            return {}
        modified = self.sim.resimulate_with_overrides(
            good.v2, sorted(start_gates), input_override
        )
        detections: Dict[int, np.ndarray] = {}
        for obs in self.observed:
            diff = None
            if obs in modified:
                diff = modified[obs] != good.v2[obs]
            if obs in observed_flip:
                diff = observed_flip[obs] if diff is None else (diff | observed_flip[obs])
            if diff is not None and diff.any():
                detections[obs] = diff
        return detections

    def detects(self, fault: Fault, good: TwoPatternResult) -> np.ndarray:
        """Boolean per-pattern mask: fault detected at any observation."""
        out = np.zeros(good.n_patterns, dtype=bool)
        for diff in self.propagate(fault, good).values():
            out |= diff
        return out
