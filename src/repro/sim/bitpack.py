"""Bit-packing helpers for the packed simulation engine.

The packed engine stores 64 test patterns per ``np.uint64`` word: pattern
``p`` lives in bit ``p % 64`` of word ``p // 64`` (little-endian bit order,
so pattern 0 is the least-significant bit of word 0).  The last word of a
row is zero-padded beyond ``n_patterns``; every cell kernel preserves a
well-defined (if not necessarily zero) tail, and :func:`unpack_patterns`
discards it.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "n_words_for",
    "tail_mask",
    "pack_patterns",
    "unpack_patterns",
    "rows_to_ints",
    "int_to_bits",
]

#: Patterns per packed word.
WORD_BITS = 64


def n_words_for(n_patterns: int) -> int:
    """Packed words needed to hold ``n_patterns`` patterns (at least 1)."""
    return max(1, (n_patterns + WORD_BITS - 1) // WORD_BITS)


def tail_mask(n_patterns: int) -> np.uint64:
    """Mask of the valid bits in the *last* word of a packed row."""
    rem = n_patterns % WORD_BITS
    if rem == 0:
        return np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.uint64((1 << rem) - 1)


def pack_patterns(values: np.ndarray) -> np.ndarray:
    """Pack 0/1 values along the last (pattern) axis into uint64 words.

    Args:
        values: uint8/bool array of shape ``(..., n_patterns)`` holding 0/1.

    Returns:
        uint64 array of shape ``(..., n_words)`` with zeroed tail bits.
    """
    values = np.ascontiguousarray(values, dtype=np.uint8)
    n_pat = values.shape[-1]
    n_words = n_words_for(n_pat)
    pad = n_words * WORD_BITS - n_pat
    if pad:
        width = [(0, 0)] * (values.ndim - 1) + [(0, pad)]
        values = np.pad(values, width)
    packed_bytes = np.packbits(values, axis=-1, bitorder="little")
    return np.ascontiguousarray(packed_bytes).view(np.uint64)


def unpack_patterns(words: np.ndarray, n_patterns: int) -> np.ndarray:
    """Unpack uint64 words back to one uint8 value per pattern.

    Inverse of :func:`pack_patterns`; tail bits beyond ``n_patterns`` are
    dropped regardless of their content.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little", count=None)
    return np.ascontiguousarray(bits[..., :n_patterns])


def rows_to_ints(words: np.ndarray) -> list:
    """Convert each packed uint64 row to one arbitrary-precision Python int.

    Big-int rows are the word type of the per-fault cone re-simulation: a
    whole row's bitwise op is a single C-level call, with none of numpy's
    per-call dispatch overhead on 4-word arrays.  Bit ``p`` of the int is
    pattern ``p``, matching the :func:`pack_patterns` layout.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim == 1:
        words = words[None, :]
    row_bytes = words.shape[-1] * 8
    blob = words.tobytes()
    return [
        int.from_bytes(blob[i : i + row_bytes], "little")
        for i in range(0, len(blob), row_bytes)
    ]


def int_to_bits(value: int, n_patterns: int) -> np.ndarray:
    """Unpack a big-int packed row to one uint8 value per pattern."""
    n_bytes = n_words_for(n_patterns) * 8
    as_bytes = np.frombuffer(value.to_bytes(n_bytes, "little"), dtype=np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little", count=n_patterns)
    return bits
