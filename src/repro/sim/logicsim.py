"""Bit-parallel gate-level logic simulation.

The simulator evaluates every gate once per call, vectorized over test
patterns with uint8 numpy arrays (one byte per pattern; values are 0/1).
For transition-delay-fault work the two vectors of a test pair (V1, V2) are
simulated independently and per-net transition masks are derived from both —
this realizes the paper's "simulation with multiple logic values" step that
memorizes which nodes switch under each pattern.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.netlist import EXTERNAL_DRIVER, Netlist

__all__ = ["CompiledSimulator", "TwoPatternResult"]


class TwoPatternResult:
    """Good-machine values for a two-pattern (V1, V2) test set.

    Attributes:
        v1: Net values under the first vectors, shape (n_nets, n_patterns).
        v2: Net values under the second vectors, same shape.
    """

    def __init__(self, v1: np.ndarray, v2: np.ndarray) -> None:
        self.v1 = v1
        self.v2 = v2

    @property
    def n_patterns(self) -> int:
        return self.v1.shape[1]

    def transitions(self) -> np.ndarray:
        """Boolean matrix: ``[net, pattern]`` is True when the net switches."""
        return self.v1 != self.v2

    def rising(self) -> np.ndarray:
        """Per-net, per-pattern 0→1 transition mask."""
        return (self.v1 == 0) & (self.v2 == 1)

    def falling(self) -> np.ndarray:
        """Per-net, per-pattern 1→0 transition mask."""
        return (self.v1 == 1) & (self.v2 == 0)


class CompiledSimulator:
    """A netlist compiled for repeated bit-parallel evaluation.

    The compile step freezes the topological order and the per-gate fanin
    tables; the netlist must not be structurally modified afterwards.
    """

    def __init__(self, nl: Netlist) -> None:
        self.nl = nl
        self.order: List[int] = nl.topo_order()
        self.input_nets: List[int] = nl.comb_inputs
        self._input_pos: Dict[int, int] = {n: i for i, n in enumerate(self.input_nets)}

    @property
    def n_inputs(self) -> int:
        return len(self.input_nets)

    def simulate(self, inputs: np.ndarray) -> np.ndarray:
        """Evaluate the core.

        Args:
            inputs: uint8 array of shape (n_inputs, n_patterns), rows ordered
                like ``Netlist.comb_inputs`` (PIs then flop Q nets).

        Returns:
            uint8 array of shape (n_nets, n_patterns) with every net's value.
        """
        inputs = np.asarray(inputs, dtype=np.uint8)
        if inputs.ndim != 2 or inputs.shape[0] != self.n_inputs:
            raise ValueError(
                f"expected inputs of shape ({self.n_inputs}, n_patterns), got {inputs.shape}"
            )
        n_pat = inputs.shape[1]
        values = np.zeros((self.nl.n_nets, n_pat), dtype=np.uint8)
        for net_id, row in zip(self.input_nets, inputs):
            values[net_id] = row
        gates = self.nl.gates
        for gid in self.order:
            g = gates[gid]
            values[g.out] = g.cell.func([values[n] for n in g.fanin])
        return values

    def simulate_pair(self, v1_in: np.ndarray, v2_in: np.ndarray) -> TwoPatternResult:
        """Simulate both vectors of a two-pattern test set."""
        return TwoPatternResult(self.simulate(v1_in), self.simulate(v2_in))

    def resimulate_with_overrides(
        self,
        base_values: np.ndarray,
        start_gates: Sequence[int],
        input_override: Dict[Tuple[int, int], np.ndarray],
        net_override: Optional[Dict[int, np.ndarray]] = None,
    ) -> Dict[int, np.ndarray]:
        """Re-evaluate only the fan-out cone of a disturbance.

        Args:
            base_values: Good-machine values from :meth:`simulate`.
            start_gates: Gates whose inputs are disturbed.
            input_override: Faulty values seen by specific (gate, pin) inputs;
                models branch and MIV faults that affect a subset of sinks.
            net_override: Faulty values for whole nets (stem faults at the
                source, before any gate reads them).

        Returns:
            Mapping of net id → faulty values for every net whose value
            changed (copy-on-write overlay over ``base_values``).
        """
        from ..netlist.topology import fanout_cone_gates

        net_override = dict(net_override or {})
        modified: Dict[int, np.ndarray] = dict(net_override)
        cone = fanout_cone_gates(self.nl, list(start_gates))
        gates = self.nl.gates
        for gid in cone:
            g = gates[gid]
            ins: List[np.ndarray] = []
            for pin, nid in enumerate(g.fanin):
                if (gid, pin) in input_override:
                    ins.append(input_override[(gid, pin)])
                elif nid in modified:
                    ins.append(modified[nid])
                else:
                    ins.append(base_values[nid])
            new = g.cell.func(ins)
            if np.array_equal(new, base_values[g.out]):
                modified.pop(g.out, None)
            else:
                modified[g.out] = new
        return modified
