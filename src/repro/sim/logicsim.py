"""Bit-parallel gate-level logic simulation.

Two engines share one compiled netlist:

* **Packed** (default): 64 test patterns per ``np.uint64`` word.  The
  compile step flattens the netlist into per-(topological level, cell type)
  groups of fanin/fanout index arrays, so each level evaluates as a handful
  of vectorized numpy gathers + word-parallel cell kernels instead of one
  Python call per gate.
* **uint8 reference** (``CompiledSimulator(nl, packed=False)``): the
  original one-byte-per-pattern, one-gate-at-a-time loop, kept as the
  differential-testing oracle.

For transition-delay-fault work the two vectors of a test pair (V1, V2) are
simulated independently and per-net transition masks are derived from both —
this realizes the paper's "simulation with multiple logic values" step that
memorizes which nodes switch under each pattern.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.cells import CellType, PackedFn, packed_eval, packed_expr
from ..netlist.netlist import EXTERNAL_DRIVER, Netlist
from ..netlist.topology import fanout_cone_gates
from .bitpack import WORD_BITS, n_words_for, pack_patterns, rows_to_ints, unpack_patterns

__all__ = ["CompiledSimulator", "TwoPatternResult"]

#: All-ones mask of one packed numpy word.
_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)


class TwoPatternResult:
    """Good-machine values for a two-pattern (V1, V2) test set.

    Holds either unpacked uint8 matrices (one byte per pattern) or packed
    uint64 word matrices (64 patterns per word).  The unpacked views ``v1``
    / ``v2`` and the boolean mask methods are always available — packed
    results unpack lazily and cache — so downstream consumers
    (:meth:`repro.core.hetgraph.HetGraph.build`, the feature extractor,
    diagnosis) never need to know which engine produced the result.
    """

    def __init__(self, v1: Optional[np.ndarray] = None, v2: Optional[np.ndarray] = None) -> None:
        self._v1 = v1
        self._v2 = v2
        self._pv1: Optional[np.ndarray] = None
        self._pv2: Optional[np.ndarray] = None
        self._n_patterns: int = 0 if v1 is None else int(v1.shape[1])

    @classmethod
    def from_packed(cls, pv1: np.ndarray, pv2: np.ndarray, n_patterns: int) -> "TwoPatternResult":
        """Wrap packed word matrices of shape ``(n_nets, n_words)``."""
        res = cls()
        res._pv1 = pv1
        res._pv2 = pv2
        res._n_patterns = int(n_patterns)
        return res

    # Big-int row views (one arbitrary-precision int per net), derived
    # lazily and cached: the fault machine reuses them across every
    # propagate call against this result.
    _iv1: Optional[List[int]] = None
    _iv2: Optional[List[int]] = None

    # ----------------------------------------------------------------- views
    @property
    def is_packed(self) -> bool:
        """True when the result carries packed word matrices."""
        return self._pv1 is not None

    @property
    def v1(self) -> np.ndarray:
        """Net values under the first vectors, shape (n_nets, n_patterns)."""
        if self._v1 is None:
            self._v1 = unpack_patterns(self._pv1, self._n_patterns)
        return self._v1

    @property
    def v2(self) -> np.ndarray:
        """Net values under the second vectors, same shape as ``v1``."""
        if self._v2 is None:
            self._v2 = unpack_patterns(self._pv2, self._n_patterns)
        return self._v2

    @property
    def packed_v1(self) -> np.ndarray:
        """Packed V1 words, shape (n_nets, n_words); packs lazily if needed."""
        if self._pv1 is None:
            self._pv1 = pack_patterns(self._v1)
        return self._pv1

    @property
    def packed_v2(self) -> np.ndarray:
        if self._pv2 is None:
            self._pv2 = pack_patterns(self._v2)
        return self._pv2

    def v1_ints(self) -> List[int]:
        """Per-net big-int packed V1 rows (cached)."""
        if self._iv1 is None:
            self._iv1 = rows_to_ints(self.packed_v1)
        return self._iv1

    def v2_ints(self) -> List[int]:
        """Per-net big-int packed V2 rows (cached)."""
        if self._iv2 is None:
            self._iv2 = rows_to_ints(self.packed_v2)
        return self._iv2

    @property
    def n_words(self) -> int:
        """Packed words per net row."""
        return n_words_for(self._n_patterns)

    @property
    def full_mask(self) -> int:
        """All-ones big-int mask spanning every bit lane of a packed row."""
        return (1 << (self.n_words * WORD_BITS)) - 1

    @property
    def valid_mask(self) -> int:
        """Big-int mask of the *pattern-carrying* bit lanes only.

        Tail lanes beyond ``n_patterns`` hold engine-dependent junk (zeros
        when a row was re-packed from unpacked values, ones below inverting
        cells in a packed simulation), so every cross-representation
        comparison must be restricted to this mask.
        """
        return (1 << self._n_patterns) - 1

    @property
    def n_patterns(self) -> int:
        return self._n_patterns

    def subset(self, cols: np.ndarray) -> "TwoPatternResult":
        """A result restricted to the given pattern columns.

        The subset stays in the parent's representation: packed parents
        produce packed subsets (packing the few selected columns once is far
        cheaper than running every later ``propagate`` unpacked).
        """
        sub = TwoPatternResult(self.v1[:, cols], self.v2[:, cols])
        if self.is_packed:
            sub._pv1 = pack_patterns(sub._v1)
            sub._pv2 = pack_patterns(sub._v2)
        return sub

    # ----------------------------------------------------------------- masks
    def transitions(self) -> np.ndarray:
        """Boolean matrix: ``[net, pattern]`` is True when the net switches."""
        return self.v1 != self.v2

    def rising(self) -> np.ndarray:
        """Per-net, per-pattern 0→1 transition mask."""
        return (self.v1 == 0) & (self.v2 == 1)

    def falling(self) -> np.ndarray:
        """Per-net, per-pattern 1→0 transition mask."""
        return (self.v1 == 1) & (self.v2 == 0)

    def transitions_packed(self) -> np.ndarray:
        """Packed transition mask words (tail bits are zero)."""
        return self.packed_v1 ^ self.packed_v2

    def rising_packed(self) -> np.ndarray:
        return ~self.packed_v1 & self.packed_v2

    def falling_packed(self) -> np.ndarray:
        return self.packed_v1 & ~self.packed_v2


class _LevelGroup:
    """All gates of one cell type within one topological level."""

    __slots__ = ("cell", "out", "fanin")

    def __init__(self, cell: CellType, out: np.ndarray, fanin: np.ndarray) -> None:
        self.cell = cell
        self.out = out  # (n_group,) output net ids
        self.fanin = fanin  # (n_group, n_inputs) fanin net ids


class CompiledSimulator:
    """A netlist compiled for repeated bit-parallel evaluation.

    The compile step freezes the topological order, the per-gate fanin
    tables, and (for the packed engine) the level/cell-type group arrays;
    the netlist must not be structurally modified afterwards.

    Args:
        nl: The design to compile.
        packed: Use the bit-packed levelized engine (default).  ``False``
            selects the uint8 reference implementation.
    """

    def __init__(self, nl: Netlist, packed: bool = True) -> None:
        self.nl = nl
        self.packed = packed
        self.order: List[int] = nl.topo_order()
        self.input_nets: List[int] = nl.comb_inputs
        self._input_pos: Dict[int, int] = {n: i for i, n in enumerate(self.input_nets)}
        self._input_net_arr = np.asarray(self.input_nets, dtype=np.intp)
        #: Fan-out cones memoized by the (sorted) start-gate tuple; fault
        #: sites recur across patterns, configs, and multi-fault draws, so
        #: each cone is derived at most once per compiled simulator.
        self._cone_cache: Dict[Tuple[int, ...], List[int]] = {}
        #: Compiled cone evaluation plans (gate id, kernel, fanin, out) for
        #: the packed re-simulation, memoized by the same start-gate key.
        self._plan_cache: Dict[
            Tuple[int, ...], List[Tuple[int, PackedFn, Tuple[int, ...], int]]
        ] = {}
        #: Generated straight-line propagation functions per start-gate key.
        self._prop_fn_cache: Dict[Tuple[int, ...], object] = {}
        #: Marshaled code objects + kernel bindings for generated cone
        #: functions.  Unlike the function cache this *does* pickle, so a
        #: design loaded from the artifact cache (or a pool's shared-memory
        #: spill) skips the dominant ``compile()`` cost of warming cones.
        self._cone_code: Dict[Tuple[int, ...], Tuple[bytes, Tuple[Tuple[int, int], ...]]] = {}
        #: Per-gate packed kernels, resolved once so cone-plan construction
        #: and the packed resimulation never hash cell types per call.
        self._gate_kernels: List[PackedFn] = [packed_eval(g.cell) for g in nl.gates]
        self._groups: List[_LevelGroup] = self._compile_levels() if packed else []

    # -------------------------------------------------------------- pickling
    def __getstate__(self):
        """Pickle (netlist, engine flag) plus the marshaled cone code.

        The compiled state holds generated straight-line functions and
        per-cell kernels (closures for truth-table-derived cells) that cannot
        pickle; those are rebuilt on load.  The *code objects* behind the
        generated cone functions, however, are the dominant preparation cost
        (``compile()`` of thousands of cones), so they travel as ``marshal``
        blobs: a design reloaded from the artifact cache — or materialized
        from a worker pool's shared-memory spill — re-binds them without
        recompiling.  Marshal blobs are interpreter-specific, so they are
        tagged with the Python version and silently dropped on mismatch
        (the cone is then recompiled from the netlist; correctness never
        depends on the cached code).
        """
        import sys

        return {
            "nl": self.nl,
            "packed": self.packed,
            "cone_code": self._cone_code,
            "cone_pyver": tuple(sys.version_info[:2]),
        }

    def __setstate__(self, state):
        import sys

        self.__init__(state["nl"], packed=state["packed"])
        if state.get("cone_pyver") == tuple(sys.version_info[:2]):
            self._cone_code.update(state.get("cone_code", {}))

    # --------------------------------------------------------------- compile
    def _compile_levels(self) -> List[_LevelGroup]:
        """Group gates by (topological level, cell type) into index arrays."""
        gates = self.nl.gates
        glevel = [0] * self.nl.n_gates
        nlevel = [0] * self.nl.n_nets
        for gid in self.order:
            g = gates[gid]
            lvl = 0
            for nid in g.fanin:
                lvl = max(lvl, nlevel[nid] + 1)
            glevel[gid] = lvl
            nlevel[g.out] = lvl
        buckets: Dict[Tuple[int, str], List[int]] = {}
        for gid in self.order:
            buckets.setdefault((glevel[gid], gates[gid].cell.name), []).append(gid)
        groups: List[_LevelGroup] = []
        for (lvl, _name), gids in sorted(buckets.items(), key=lambda kv: kv[0]):
            cell = gates[gids[0]].cell
            out = np.asarray([gates[g].out for g in gids], dtype=np.intp)
            fanin = np.asarray([gates[g].fanin for g in gids], dtype=np.intp)
            groups.append(_LevelGroup(cell, out, fanin))
        return groups

    @property
    def n_inputs(self) -> int:
        return len(self.input_nets)

    def _check_inputs(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.uint8)
        if inputs.ndim != 2 or inputs.shape[0] != self.n_inputs:
            raise ValueError(
                f"expected inputs of shape ({self.n_inputs}, n_patterns), got {inputs.shape}"
            )
        return inputs

    # -------------------------------------------------------------- evaluate
    def simulate(self, inputs: np.ndarray) -> np.ndarray:
        """Evaluate the core.

        Args:
            inputs: uint8 array of shape (n_inputs, n_patterns), rows ordered
                like ``Netlist.comb_inputs`` (PIs then flop Q nets).

        Returns:
            uint8 array of shape (n_nets, n_patterns) with every net's value.
        """
        inputs = self._check_inputs(inputs)
        if self.packed:
            n_pat = inputs.shape[1]
            return unpack_patterns(self.simulate_packed(inputs), n_pat)
        return self._simulate_u8(inputs)

    def _simulate_u8(self, inputs: np.ndarray) -> np.ndarray:
        """Reference engine: one uint8 byte per pattern, one gate at a time."""
        n_pat = inputs.shape[1]
        values = np.zeros((self.nl.n_nets, n_pat), dtype=np.uint8)
        for net_id, row in zip(self.input_nets, inputs):
            values[net_id] = row
        gates = self.nl.gates
        for gid in self.order:
            g = gates[gid]
            values[g.out] = g.cell.func([values[n] for n in g.fanin])
        return values

    def simulate_packed(self, inputs: np.ndarray) -> np.ndarray:
        """Evaluate the core in packed form.

        Args:
            inputs: uint8 array of shape (n_inputs, n_patterns).

        Returns:
            uint64 array of shape (n_nets, n_words) with 64 patterns per
            word.  Tail bits of inverting cells may be 1; unpack with
            :func:`repro.sim.bitpack.unpack_patterns` to discard them.
        """
        inputs = self._check_inputs(inputs)
        n_words = n_words_for(inputs.shape[1])
        values = np.zeros((self.nl.n_nets, n_words), dtype=np.uint64)
        if self.n_inputs:
            values[self._input_net_arr] = pack_patterns(inputs)
        for grp in self._groups:
            ins = values[grp.fanin]  # (n_group, n_inputs, n_words)
            fn = packed_eval(grp.cell)
            values[grp.out] = fn([ins[:, i] for i in range(ins.shape[1])], _FULL_WORD)
        return values

    def simulate_pair(self, v1_in: np.ndarray, v2_in: np.ndarray) -> TwoPatternResult:
        """Simulate both vectors of a two-pattern test set."""
        if self.packed:
            v1_in = self._check_inputs(v1_in)
            v2_in = self._check_inputs(v2_in)
            n_pat = v1_in.shape[1]
            return TwoPatternResult.from_packed(
                self.simulate_packed(v1_in), self.simulate_packed(v2_in), n_pat
            )
        return TwoPatternResult(self.simulate(v1_in), self.simulate(v2_in))

    # ----------------------------------------------------------------- cones
    def fanout_cone(self, start_gates: Sequence[int]) -> List[int]:
        """Topologically sorted fan-out cone, memoized per start-gate tuple."""
        key = tuple(sorted(set(start_gates)))
        cone = self._cone_cache.get(key)
        if cone is None:
            cone = fanout_cone_gates(self.nl, list(key))
            self._cone_cache[key] = cone
        return cone

    def resimulate_with_overrides(
        self,
        base_values: np.ndarray,
        start_gates: Sequence[int],
        input_override: Dict[Tuple[int, int], np.ndarray],
        net_override: Optional[Dict[int, np.ndarray]] = None,
    ) -> Dict[int, np.ndarray]:
        """Re-evaluate only the fan-out cone of a disturbance (uint8 values).

        Args:
            base_values: Good-machine values from :meth:`simulate`.
            start_gates: Gates whose inputs are disturbed.
            input_override: Faulty values seen by specific (gate, pin) inputs;
                models branch and MIV faults that affect a subset of sinks.
            net_override: Faulty values for whole nets (stem faults at the
                source, before any gate reads them).

        Returns:
            Mapping of net id → faulty values for every net whose value
            changed (copy-on-write overlay over ``base_values``).
        """
        net_override = dict(net_override or {})
        modified: Dict[int, np.ndarray] = dict(net_override)
        gates = self.nl.gates
        for gid in self.fanout_cone(start_gates):
            g = gates[gid]
            ins: List[np.ndarray] = []
            for pin, nid in enumerate(g.fanin):
                if (gid, pin) in input_override:
                    ins.append(input_override[(gid, pin)])
                elif nid in modified:
                    ins.append(modified[nid])
                else:
                    ins.append(base_values[nid])
            new = g.cell.func(ins)
            if np.array_equal(new, base_values[g.out]):
                modified.pop(g.out, None)
            else:
                modified[g.out] = new
        return modified

    def cone_plan(
        self, start_gates: Sequence[int]
    ) -> Tuple[List[Tuple[int, PackedFn, Tuple[int, ...], int]], Dict[int, int]]:
        """Compiled evaluation plan for a fan-out cone, memoized per key.

        One plan entry per cone gate in topological order: ``(gate_id,
        packed_kernel, fanin_nets, out_net)``, plus a gate-id → plan-index
        map.  Caching the plan — not just the gate-id list — means repeated
        ``propagate`` calls on the same fault site never re-touch
        ``Gate``/``CellType`` objects.
        """
        key = tuple(sorted(set(start_gates)))
        cached = self._plan_cache.get(key)
        if cached is None:
            gates = self.nl.gates
            kernels = self._gate_kernels
            plan = []
            for gid in self.fanout_cone(key):
                g = gates[gid]
                plan.append((gid, kernels[gid], tuple(g.fanin), g.out))
            cached = (plan, {gid: i for i, (gid, _f, _fi, _o) in enumerate(plan)})
            self._plan_cache[key] = cached
        return cached

    def propagation_fn(self, start_gates: Sequence[int]):
        """Generated straight-line propagation function for one cone.

        The fault machine calls the same cones thousands of times (every
        fault of a site, every pattern batch), so each cone is compiled
        *once* into a specialized Python function: every gate becomes one
        inlined bitwise expression over big-int local variables — no plan
        tuples, no per-gate dict probes, no kernel dispatch — and only the
        cone's *observed* nets are compared against the base at the end.

        The generated function has signature ``fn(b, ov, full, vm)`` with
        ``b`` the per-net big-int base rows (V2), ``ov`` the ``(gate, pin)
        → faulty row`` override dict (pins absent from ``ov`` read their
        fault-free value), ``full`` the all-ones mask, and ``vm`` the
        valid-lane mask (:attr:`TwoPatternResult.valid_mask`) that strips
        tail-lane artifacts from the reported diffs.  It returns
        ``{observed net id → nonzero diff row}``.  Unlike
        :meth:`resimulate_packed` it does not support ``net_override`` and
        reports observed nets only.
        """
        key = tuple(sorted(set(start_gates)))
        fn = self._prop_fn_cache.get(key)
        if fn is None:
            cached = self._cone_code.get(key)
            if cached is not None:
                fn = self._bind_cone_code(key, cached)
            else:
                fn = self._build_propagation_fn(key)
            self._prop_fn_cache[key] = fn
        return fn

    def _bind_cone_code(
        self, key: Tuple[int, ...],
        cached: Tuple[bytes, Tuple[Tuple[int, int], ...]],
    ):
        """Re-bind a marshaled cone code object to this simulator's kernels."""
        import marshal

        blob, kernel_gids = cached
        ns: Dict[str, object] = {
            "_K": {idx: self._gate_kernels[gid] for idx, gid in kernel_gids}
        }
        exec(marshal.loads(blob), ns)
        return ns["_prop"]

    def _build_propagation_fn(self, key: Tuple[int, ...]):
        gates = self.nl.gates
        observed = set(self.nl.observed_nets)
        seeds = set(key)
        kernels: Dict[int, PackedFn] = {}
        lines = ["def _prop(b, ov, full, vm, _K=_K):"]
        defined: Dict[int, str] = {}
        cone = self.fanout_cone(key)
        for idx, gid in enumerate(cone):
            g = gates[gid]
            if gid in seeds:
                # Disturbed gate: each pin may carry an injected faulty row.
                args = []
                for pin, nid in enumerate(g.fanin):
                    src = defined.get(nid, f"b[{nid}]")
                    var = f"t{gid}_{pin}"
                    lines.append(f"    {var} = ov.get(({gid},{pin}))")
                    lines.append(f"    if {var} is None: {var} = {src}")
                    args.append(var)
            else:
                args = [defined.get(nid, f"b[{nid}]") for nid in g.fanin]
            expr = packed_expr(g.cell, args)
            if expr is None:
                kernels[idx] = self._gate_kernels[gid]
                expr = f"_K[{idx}](({', '.join(args)},), full)"
            lines.append(f"    v{g.out} = {expr}")
            defined[g.out] = f"v{g.out}"
        lines.append("    r = {}")
        for gid in cone:
            out = gates[gid].out
            if out in observed:
                lines.append(f"    d = (v{out} ^ b[{out}]) & vm")
                lines.append(f"    if d: r[{out}] = d")
        lines.append("    return r")
        kernel_gids: Dict[int, int] = {}
        for idx, gid in enumerate(cone):
            if idx in kernels:
                kernel_gids[idx] = gid
        code = compile("\n".join(lines), f"<cone-plan {key[:4]}>", "exec")
        import marshal

        self._cone_code[key] = (marshal.dumps(code), tuple(kernel_gids.items()))
        ns: Dict[str, object] = {"_K": kernels}
        exec(code, ns)
        return ns["_prop"]

    def resimulate_packed(
        self,
        base_ints: Sequence[int],
        start_gates: Sequence[int],
        input_override: Dict[Tuple[int, int], int],
        full_mask: int,
        net_override: Optional[Dict[int, int]] = None,
    ) -> Dict[int, int]:
        """Packed-word counterpart of :meth:`resimulate_with_overrides`.

        ``base_ints`` holds one arbitrary-precision Python int per net (from
        :meth:`TwoPatternResult.v2_ints`), bit ``p`` = pattern ``p``; the
        override values are ints in the same layout and ``full_mask`` is the
        all-ones mask over every bit lane.  Big-int rows make each gate
        evaluation one or two C-level bitwise calls — an order of magnitude
        less per-gate overhead than numpy on 4-word arrays.  Evaluation is
        event-driven: gates none of whose fanins changed are skipped, and
        the walk stops once the change frontier dies past the last
        overridden gate.

        Returns:
            Mapping of net id → faulty packed row for every net whose row
            changed (copy-on-write overlay over ``base_ints``).
        """
        modified: Dict[int, int] = dict(net_override or {})
        ov_gates = {g for (g, _p) in input_override}
        plan, pos = self.cone_plan(start_gates)
        last_ov = max((pos.get(g, -1) for g in ov_gates), default=-1)
        for i, (gid, fn, fanin, out) in enumerate(plan):
            if gid in ov_gates:
                ins = []
                for pin, nid in enumerate(fanin):
                    v = input_override.get((gid, pin))
                    if v is None:
                        v = modified.get(nid)
                        if v is None:
                            v = base_ints[nid]
                    ins.append(v)
            else:
                if not modified:
                    if i > last_ov:
                        break
                    continue
                touched = False
                for nid in fanin:
                    if nid in modified:
                        touched = True
                        break
                if not touched:
                    continue
                ins = [modified[nid] if nid in modified else base_ints[nid] for nid in fanin]
            new = fn(ins, full_mask)
            if new == base_ints[out]:
                if out in modified:
                    del modified[out]
            else:
                modified[out] = new
        return modified
