"""Bit-parallel logic and fault simulation substrate."""

from .bitpack import WORD_BITS, n_words_for, pack_patterns, tail_mask, unpack_patterns
from .logicsim import CompiledSimulator, TwoPatternResult
from .faultsim import FaultMachine
from .threeval import X, forced_nets, simulate3

__all__ = [
    "CompiledSimulator",
    "TwoPatternResult",
    "FaultMachine",
    "WORD_BITS",
    "n_words_for",
    "pack_patterns",
    "tail_mask",
    "unpack_patterns",
    "X",
    "forced_nets",
    "simulate3",
]
