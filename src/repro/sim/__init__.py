"""Bit-parallel logic and fault simulation substrate."""

from .logicsim import CompiledSimulator, TwoPatternResult
from .faultsim import FaultMachine
from .threeval import X, forced_nets, simulate3

__all__ = [
    "CompiledSimulator",
    "TwoPatternResult",
    "FaultMachine",
    "X",
    "forced_nets",
    "simulate3",
]
