"""Feature-significance explanation for trained GNN models.

Stand-in for GNNExplainer's feature-mask mode (Table II's significance
scores): a per-feature sigmoid mask is trained to preserve the model's
predictions while an L1 penalty pushes unneeded features toward zero.  The
significance score of feature *f* is the learned mask value ``sigmoid(m_f)``
in [0, 1] — features the model relies on resist the penalty and keep scores
near or above 0.5, unused ones sink.

A model-agnostic permutation importance is provided as a cross-check.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .data import GraphBatch, GraphData, build_batch
from .loss import sigmoid, softmax_cross_entropy
from .model import GraphClassifier

__all__ = ["feature_mask_significance", "permutation_importance"]


def feature_mask_significance(
    model: GraphClassifier,
    graphs: Sequence[GraphData],
    n_steps: int = 120,
    lr: float = 0.05,
    l1: float = 0.005,
    seed: int = 0,
) -> np.ndarray:
    """Learned per-feature significance scores in [0, 1].

    Args:
        model: Trained graph classifier (its parameters are not modified —
            gradients accumulated during mask training are discarded).
        graphs: Explanation dataset; the model's own predictions on the
            unmasked inputs serve as targets (faithfulness, not accuracy).
        n_steps: Mask optimization steps.
        lr: Mask learning rate.
        l1: Sparsity penalty on mask values.
        seed: Mask initialization seed.
    """
    be = model.backend
    batch = build_batch(list(graphs))
    base_logits = be.to_numpy(model.forward(batch))
    targets = np.argmax(base_logits, axis=1)

    rng = np.random.default_rng(seed)
    n_feat = batch.x.shape[1]
    mask_logits = rng.normal(0.0, 0.01, size=n_feat)
    x0 = batch.x.copy()

    for _ in range(n_steps):
        m = sigmoid(mask_logits)
        batch.x = x0 * m[None, :]
        logits = model.forward(batch)
        _loss, dlogits = softmax_cross_entropy(logits, targets)
        model.zero_grad()
        dx = be.to_numpy(model.backward(dlogits))
        dm = (dx * x0).sum(axis=0) * m * (1.0 - m)
        dm += l1 * m * (1.0 - m)  # d/dlogit of l1 * sigmoid
        mask_logits -= lr * dm

    batch.x = x0
    model.zero_grad()
    return sigmoid(mask_logits)


def permutation_importance(
    model: GraphClassifier,
    graphs: Sequence[GraphData],
    n_repeats: int = 3,
    seed: int = 0,
) -> np.ndarray:
    """Accuracy drop when one feature column is shuffled across nodes."""
    be = model.backend
    batch = build_batch(list(graphs))
    labels = batch.y
    base_acc = float(np.mean(np.argmax(be.to_numpy(model.forward(batch)), axis=1) == labels))
    rng = np.random.default_rng(seed)
    x0 = batch.x.copy()
    n_feat = x0.shape[1]
    drops = np.zeros(n_feat)
    for f in range(n_feat):
        accs: List[float] = []
        for _ in range(n_repeats):
            batch.x = x0.copy()
            batch.x[:, f] = rng.permutation(batch.x[:, f])
            acc = float(np.mean(np.argmax(be.to_numpy(model.forward(batch)), axis=1) == labels))
            accs.append(acc)
        drops[f] = base_acc - float(np.mean(accs))
    batch.x = x0
    return drops
