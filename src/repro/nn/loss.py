"""Loss functions returning (loss, gradient-w.r.t.-logits) pairs."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["softmax", "softmax_cross_entropy", "sigmoid", "bce_with_logits"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray, class_weights: Optional[np.ndarray] = None
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy over rows.

    Args:
        logits: (n, n_classes).
        labels: (n,) integer class ids.
        class_weights: Optional per-class loss weights (imbalance handling).

    Returns:
        (scalar loss, gradient w.r.t. logits of the same shape).
    """
    n = logits.shape[0]
    probs = softmax(logits)
    eps = 1e-12
    w = np.ones(n) if class_weights is None else class_weights[labels]
    losses = -np.log(probs[np.arange(n), labels] + eps) * w
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    grad *= w[:, None]
    denom = max(w.sum(), eps)
    return float(losses.sum() / denom), grad / denom


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def bce_with_logits(
    logits: np.ndarray,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
    pos_weight: float = 1.0,
) -> Tuple[float, np.ndarray]:
    """Masked binary cross-entropy on logits.

    Args:
        logits: Arbitrary shape.
        targets: Same shape, in {0, 1}.
        mask: Boolean mask of entries contributing to the loss.
        pos_weight: Extra weight on positive targets (class imbalance).

    Returns:
        (scalar loss, gradient w.r.t. logits).
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    p = sigmoid(logits)
    eps = 1e-12
    w = np.where(targets > 0.5, pos_weight, 1.0)
    if mask is not None:
        w = w * mask
    denom = max(float(np.sum(w > 0)), 1.0)
    losses = -(targets * np.log(p + eps) + (1 - targets) * np.log(1 - p + eps)) * w
    grad = (p - targets) * w / denom
    return float(losses.sum() / denom), grad
