"""Loss functions returning (loss, gradient-w.r.t.-logits) pairs.

The losses are backend-generic: logits may be numpy arrays or tensors from
any :mod:`repro.nn.backends` engine (the engine is inferred from the logits),
and the returned gradient lives on the same backend so it feeds straight into
``model.backward``.  Labels, targets, and masks are host-side numpy arrays
(they come from :class:`~repro.nn.data.GraphBatch`); weight and denominator
bookkeeping happens on the host so the numpy path is bitwise identical to the
pre-backend implementation.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from .backends import infer_backend

__all__ = ["softmax", "softmax_cross_entropy", "sigmoid", "bce_with_logits"]


def _host(x: Any) -> np.ndarray:
    """Any array-like (including backend tensors) as a host numpy array."""
    return x if isinstance(x, np.ndarray) else infer_backend(x)._to_host(x)


def softmax(logits: Any) -> Any:
    """Row-wise softmax, numerically stabilized; same backend as the input."""
    be = infer_backend(logits)
    z = logits - be.max(logits, axis=-1, keepdims=True)
    e = be.exp(z)
    return e / be.sum(e, axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: Any, labels: np.ndarray, class_weights: Optional[np.ndarray] = None
) -> Tuple[float, Any]:
    """Mean cross-entropy over rows.

    Args:
        logits: (n, n_classes), numpy or backend tensor.
        labels: (n,) integer class ids (host-side).
        class_weights: Optional per-class loss weights (imbalance handling).

    Returns:
        (scalar loss, gradient w.r.t. logits of the same shape/backend).
    """
    be = infer_backend(logits)
    labels = np.asarray(_host(labels), dtype=np.int64)
    n = labels.shape[0]
    probs = softmax(logits)
    eps = 1e-12
    w_host = np.ones(n) if class_weights is None else class_weights[labels]
    onehot = be.onehot(labels, int(logits.shape[-1]))
    w = be.asarray(w_host)
    # sum(probs * onehot) picks the true-class probability exactly (the other
    # terms are exact zeros), matching fancy indexing bit for bit.
    losses = -be.log(be.sum(probs * onehot, axis=-1) + eps) * w
    grad = (probs - onehot) * w[:, None]
    denom = max(float(w_host.sum()), eps)
    return be.to_scalar(be.sum(losses)) / denom, grad / denom


def sigmoid(x: Any) -> Any:
    """Numerically stable logistic function on numpy or backend tensors."""
    return infer_backend(x).sigmoid(x)


def bce_with_logits(
    logits: Any,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
    pos_weight: float = 1.0,
) -> Tuple[float, Any]:
    """Masked binary cross-entropy on logits.

    Args:
        logits: Arbitrary shape, numpy or backend tensor.
        targets: Same shape, in {0, 1} (host-side).
        mask: Boolean mask of entries contributing to the loss.
        pos_weight: Extra weight on positive targets (class imbalance).

    Returns:
        (scalar loss, gradient w.r.t. logits on the logits' backend).
    """
    be = infer_backend(logits)
    targets_host = np.asarray(_host(targets), dtype=np.float64)
    p = be.sigmoid(logits)
    eps = 1e-12
    w_host = np.where(targets_host > 0.5, pos_weight, 1.0)
    if mask is not None:
        w_host = w_host * np.asarray(_host(mask))
    denom = max(float(np.sum(w_host > 0)), 1.0)
    t = be.asarray(targets_host)
    w = be.asarray(w_host)
    losses = -(t * be.log(p + eps) + (1 - t) * be.log(1 - p + eps)) * w
    grad = (p - t) * w / denom
    return be.to_scalar(be.sum(losses)) / denom, grad
