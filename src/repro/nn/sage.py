"""GraphSAGE-style convolution layer (Hamilton et al., 2017).

An alternative aggregation to the paper's GCN (eq. (1)): the node's own
features and the mean of its neighbors' features pass through *separate*
weight matrices before the nonlinearity::

    H' = act(H @ W_self + A_mean @ H @ W_neigh + b)

Keeping self and neighborhood channels apart often helps when a node's own
features (e.g. its tier bit) carry different information than its
surroundings.  The layer is drop-in compatible with
:class:`~repro.nn.model.GCNEncoder` via the ``layer_cls`` hook, runs on any
:mod:`repro.nn.backends` engine, and is benchmarked against plain GCN in the
test suite.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from .backends import get_backend
from .layers import BackendSpec, Module, Parameter, _glorot

__all__ = ["SAGELayer", "make_sage_encoder"]


class SAGELayer(Module):
    """GraphSAGE mean-aggregator layer with manual backprop."""

    def __init__(
        self,
        n_in: int,
        n_out: int,
        rng: np.random.Generator,
        activation: bool = True,
        backend: BackendSpec = None,
    ) -> None:
        self.backend = get_backend(backend)
        self.W_self = Parameter(_glorot(rng, n_in, n_out), self.backend)
        self.W_neigh = Parameter(_glorot(rng, n_in, n_out), self.backend)
        self.b = Parameter(np.zeros(n_out), self.backend)
        self.activation = activation
        self._cache: Optional[Tuple[Any, Any, Any, Any]] = None

    def parameters(self) -> List[Parameter]:
        return [self.W_self, self.W_neigh, self.b]

    def forward(self, a_hat: Any, h: Any) -> Any:
        be = self.backend
        h = be.asarray(h)
        z = be.spmm(a_hat, h)
        s = h @ self.W_self.value + z @ self.W_neigh.value + self.b.value
        out = be.relu(s) if self.activation else s
        self._cache = (a_hat, h, z, s)
        return out

    def backward(self, dout: Any) -> Any:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        be = self.backend
        a_hat, h, z, s = self._cache
        ds = dout * be.relu_grad(s) if self.activation else dout
        self.W_self.grad += h.T @ ds
        self.W_neigh.grad += z.T @ ds
        self.b.grad += be.sum(ds, axis=0)
        dh = ds @ self.W_self.value.T
        dz = ds @ self.W_neigh.value.T
        return dh + be.spmm_t(a_hat, dz)


def make_sage_encoder(n_in: int, hidden, seed: int = 0, backend: BackendSpec = None):
    """A :class:`~repro.nn.model.GCNEncoder`-shaped stack of SAGE layers."""
    from .model import GCNEncoder

    be = get_backend(backend)
    rng = np.random.default_rng(seed)
    enc = GCNEncoder.__new__(GCNEncoder)
    enc.backend = be
    enc.layers = []
    prev = n_in
    for width in hidden:
        enc.layers.append(SAGELayer(prev, width, rng, activation=True, backend=be))
        prev = width
    enc.n_out = prev
    return enc
