"""Optimizers over :class:`repro.nn.layers.Parameter` lists.

Optimizer state (momentum / first and second moments) lives on each
parameter's backend, so stepping never crosses the host boundary.  Build the
optimizer *after* any ``to_backend`` migration — moving parameters resets
their gradients and orphans previously allocated state.
"""

from __future__ import annotations

from typing import Sequence

from .layers import Parameter

__all__ = ["Adam", "SGD"]


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.01, momentum: float = 0.0) -> None:
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [p.backend.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            v *= self.momentum
            v -= self.lr * p.grad
            p.value += v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-2,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [p.backend.zeros_like(p.value) for p in self.params]
        self._v = [p.backend.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1 ** self._t
        b2t = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.value
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            p.value -= self.lr * (m / b1t) / (p.backend.sqrt(v / b2t) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
