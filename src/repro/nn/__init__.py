"""GNN substrate with pluggable tensor backends (PyTorch/DGL replacement).

The numpy/scipy backend is the always-available reference oracle; an optional
torch backend (CPU/GPU) is selected per model (``backend=``) or globally via
``$REPRO_NN_BACKEND``.  See :mod:`repro.nn.backends`.
"""

from .backends import (
    BackendUnavailableError,
    TensorBackend,
    available_backends,
    get_backend,
    torch_available,
)
from .layers import Dense, GCNLayer, Module, Parameter, relu
from .data import GraphBatch, GraphData, build_batch, normalized_adjacency
from .loss import bce_with_logits, sigmoid, softmax, softmax_cross_entropy
from .model import GCNEncoder, GraphClassifier, NodeClassifier
from .optim import Adam, SGD
from .pca import PCA
from .explain import feature_mask_significance, permutation_importance
from .sage import SAGELayer, make_sage_encoder

__all__ = [
    "TensorBackend",
    "BackendUnavailableError",
    "available_backends",
    "get_backend",
    "torch_available",
    "Dense",
    "GCNLayer",
    "Module",
    "Parameter",
    "relu",
    "GraphBatch",
    "GraphData",
    "build_batch",
    "normalized_adjacency",
    "bce_with_logits",
    "sigmoid",
    "softmax",
    "softmax_cross_entropy",
    "GCNEncoder",
    "GraphClassifier",
    "NodeClassifier",
    "Adam",
    "SGD",
    "PCA",
    "SAGELayer",
    "make_sage_encoder",
    "feature_mask_significance",
    "permutation_importance",
]
