"""Neural-network building blocks with manual backpropagation.

A deliberately small, dependency-free replacement for the PyTorch/DGL stack
the paper uses: dense layers, the paper's GCN layer (eq. (1): mean
aggregation over neighbors, learnable weight and bias, activation), and ReLU.
Gradients are verified against finite differences in the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["Parameter", "Module", "Dense", "GCNLayer", "relu", "relu_grad"]


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, value: np.ndarray) -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0


class Module:
    """Base class: exposes parameters for the optimizer and state I/O."""

    def parameters(self) -> List[Parameter]:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self) -> List[np.ndarray]:
        return [p.value.copy() for p in self.parameters()]

    def load_state_dict(self, state: List[np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(f"state has {len(state)} tensors, model has {len(params)}")
        for p, v in zip(params, state):
            if p.value.shape != v.shape:
                raise ValueError(f"shape mismatch: {p.value.shape} vs {v.shape}")
            p.value[...] = v


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(x.dtype)


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Dense(Module):
    """Affine layer ``X @ W + b`` with optional ReLU."""

    def __init__(
        self, n_in: int, n_out: int, rng: np.random.Generator, activation: bool = False
    ) -> None:
        self.W = Parameter(_glorot(rng, n_in, n_out))
        self.b = Parameter(np.zeros(n_out))
        self.activation = activation
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def parameters(self) -> List[Parameter]:
        return [self.W, self.b]

    def forward(self, x: np.ndarray) -> np.ndarray:
        s = x @ self.W.value + self.b.value
        out = relu(s) if self.activation else s
        self._cache = (x, s)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, s = self._cache
        ds = dout * relu_grad(s) if self.activation else dout
        self.W.grad += x.T @ ds
        self.b.grad += ds.sum(axis=0)
        return ds @ self.W.value.T


class GCNLayer(Module):
    """The paper's graph-convolution layer (eq. (1)).

    ``H' = act(b + A_hat @ H @ W)`` where ``A_hat`` is the row-normalized
    (mean over neighbors, self-loop included) adjacency of the sub-graph.
    ``A_hat`` is supplied per batch (block-diagonal over graphs).
    """

    def __init__(
        self, n_in: int, n_out: int, rng: np.random.Generator, activation: bool = True
    ) -> None:
        self.W = Parameter(_glorot(rng, n_in, n_out))
        self.b = Parameter(np.zeros(n_out))
        self.activation = activation
        self._cache: Optional[Tuple[sp.spmatrix, np.ndarray, np.ndarray]] = None

    def parameters(self) -> List[Parameter]:
        return [self.W, self.b]

    def forward(self, a_hat: sp.spmatrix, h: np.ndarray) -> np.ndarray:
        z = a_hat @ h
        s = z @ self.W.value + self.b.value
        out = relu(s) if self.activation else s
        self._cache = (a_hat, z, s)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        a_hat, z, s = self._cache
        ds = dout * relu_grad(s) if self.activation else dout
        self.W.grad += z.T @ ds
        self.b.grad += ds.sum(axis=0)
        dz = ds @ self.W.value.T
        return a_hat.T @ dz
