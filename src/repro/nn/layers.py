"""Neural-network building blocks with manual backpropagation.

A deliberately small replacement for the PyTorch/DGL stack the paper uses:
dense layers, the paper's GCN layer (eq. (1): mean aggregation over
neighbors, learnable weight and bias, activation), and ReLU.  All tensor math
goes through a pluggable :mod:`repro.nn.backends` engine — numpy/scipy is the
always-available reference oracle, torch the optional accelerated path — and
gradients are verified against finite differences on every available backend
in the test suite.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple, Union

import numpy as np

from .backends import TensorBackend, get_backend

__all__ = ["Parameter", "Module", "Dense", "GCNLayer", "relu", "relu_grad"]

BackendSpec = Union[None, str, TensorBackend]


class Parameter:
    """A trainable tensor with its gradient accumulator.

    The value/grad pair lives on one backend; ``to_backend`` migrates both
    (grad is reset — optimizer state must be rebuilt after a migration).
    """

    def __init__(self, value: Any, backend: BackendSpec = None) -> None:
        self.backend = get_backend(backend)
        self.value = self.backend.asarray(value)
        self.grad = self.backend.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.backend.fill(self.grad, 0.0)

    def to_backend(self, backend: BackendSpec) -> None:
        be = get_backend(backend)
        if be is self.backend:
            return
        host = self.backend.to_numpy(self.value)
        self.backend = be
        self.value = be.asarray(host)
        self.grad = be.zeros_like(self.value)


class Module:
    """Base class: exposes parameters for the optimizer and state I/O."""

    backend: TensorBackend

    def parameters(self) -> List[Parameter]:
        raise NotImplementedError

    def modules(self) -> List["Module"]:
        """Direct sub-modules (for backend migration); leaves return []."""
        return []

    def _direct_parameters(self) -> List[Parameter]:
        """Parameters owned by this module itself, including frozen ones."""
        return self.parameters()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def to_backend(self, backend: BackendSpec) -> "Module":
        """Migrate all parameters (frozen ones included) to another backend.

        Weights transfer exactly (float64 host roundtrip); forward caches are
        dropped and any optimizer built on the old tensors must be recreated.
        """
        be = get_backend(backend)
        for child in self.modules():
            child.to_backend(be)
        for p in self._direct_parameters():
            p.to_backend(be)
        self.backend = be
        if hasattr(self, "_cache"):
            self._cache = None
        return self

    def state_dict(self) -> List[np.ndarray]:
        """Backend-neutral weights: always host float64 numpy arrays."""
        return [p.backend.to_numpy(p.value) for p in self.parameters()]

    def load_state_dict(self, state: List[np.ndarray]) -> None:
        """Load backend-neutral weights; shape AND dtype must match."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(f"state has {len(state)} tensors, model has {len(params)}")
        for p, v in zip(params, state):
            v = np.asarray(v)
            shape = tuple(p.value.shape)
            if shape != v.shape:
                raise ValueError(f"shape mismatch: {shape} vs {v.shape}")
            expected = p.backend.dtype_of(p.value)
            if v.dtype != expected:
                raise ValueError(f"dtype mismatch: expected {expected}, got {v.dtype}")
            p.backend.copyto(p.value, v)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(x.dtype)


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Dense(Module):
    """Affine layer ``X @ W + b`` with optional ReLU."""

    def __init__(
        self,
        n_in: int,
        n_out: int,
        rng: np.random.Generator,
        activation: bool = False,
        backend: BackendSpec = None,
    ) -> None:
        self.backend = get_backend(backend)
        self.W = Parameter(_glorot(rng, n_in, n_out), self.backend)
        self.b = Parameter(np.zeros(n_out), self.backend)
        self.activation = activation
        self._cache: Optional[Tuple[Any, Any]] = None

    def parameters(self) -> List[Parameter]:
        return [self.W, self.b]

    def forward(self, x: Any) -> Any:
        be = self.backend
        x = be.asarray(x)
        s = x @ self.W.value + self.b.value
        out = be.relu(s) if self.activation else s
        self._cache = (x, s)
        return out

    def backward(self, dout: Any) -> Any:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        be = self.backend
        x, s = self._cache
        ds = dout * be.relu_grad(s) if self.activation else dout
        self.W.grad += x.T @ ds
        self.b.grad += be.sum(ds, axis=0)
        return ds @ self.W.value.T


class GCNLayer(Module):
    """The paper's graph-convolution layer (eq. (1)).

    ``H' = act(b + A_hat @ H @ W)`` where ``A_hat`` is the row-normalized
    (mean over neighbors, self-loop included) adjacency of the sub-graph.
    ``A_hat`` is supplied per batch (block-diagonal over graphs) as a scipy
    CSR matrix or a backend SpMM handle.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        rng: np.random.Generator,
        activation: bool = True,
        backend: BackendSpec = None,
    ) -> None:
        self.backend = get_backend(backend)
        self.W = Parameter(_glorot(rng, n_in, n_out), self.backend)
        self.b = Parameter(np.zeros(n_out), self.backend)
        self.activation = activation
        self._cache: Optional[Tuple[Any, Any, Any]] = None

    def parameters(self) -> List[Parameter]:
        return [self.W, self.b]

    def forward(self, a_hat: Any, h: Any) -> Any:
        be = self.backend
        h = be.asarray(h)
        z = be.spmm(a_hat, h)
        s = z @ self.W.value + self.b.value
        out = be.relu(s) if self.activation else s
        self._cache = (a_hat, z, s)
        return out

    def backward(self, dout: Any) -> Any:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        be = self.backend
        a_hat, z, s = self._cache
        ds = dout * be.relu_grad(s) if self.activation else dout
        self.W.grad += z.T @ ds
        self.b.grad += be.sum(ds, axis=0)
        dz = ds @ self.W.value.T
        return be.spmm_t(a_hat, dz)
