"""GCN model assemblies: encoder, graph classifier, node classifier.

The three paper models share these shapes:

* **Tier-predictor** — ``GraphClassifier``: GCN layers, mean graph pooling,
  softmax over tiers.
* **MIV-pinpointer** — ``NodeClassifier``: GCN layers, per-node sigmoid
  restricted to MIV nodes.
* **Classifier** — ``GraphClassifier`` built on the Tier-predictor's
  *pre-trained, frozen* encoder (network-based deep transfer learning) with a
  fresh trainable head.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .data import GraphBatch
from .layers import Dense, GCNLayer, Module, Parameter

__all__ = ["GCNEncoder", "GraphClassifier", "NodeClassifier"]


class GCNEncoder(Module):
    """A stack of GCN layers producing node embeddings."""

    def __init__(self, n_in: int, hidden: Sequence[int], rng: np.random.Generator) -> None:
        self.layers: List[GCNLayer] = []
        prev = n_in
        for width in hidden:
            self.layers.append(GCNLayer(prev, width, rng, activation=True))
            prev = width
        self.n_out = prev

    def parameters(self) -> List[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def forward(self, a_hat: sp.spmatrix, x: np.ndarray) -> np.ndarray:
        h = x
        for layer in self.layers:
            h = layer.forward(a_hat, h)
        return h

    def backward(self, dh: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dh = layer.backward(dh)
        return dh


class GraphClassifier(Module):
    """Encoder + mean pooling + linear head → per-graph logits."""

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        hidden: Sequence[int] = (32, 32),
        seed: int = 0,
        encoder: Optional[GCNEncoder] = None,
        freeze_encoder: bool = False,
        head_hidden: Sequence[int] = (),
    ) -> None:
        rng = np.random.default_rng(seed)
        self.encoder = encoder if encoder is not None else GCNEncoder(n_features, hidden, rng)
        self.head_layers: List[Dense] = []
        prev = self.encoder.n_out
        for width in head_hidden:
            self.head_layers.append(Dense(prev, width, rng, activation=True))
            prev = width
        self.head = Dense(prev, n_classes, rng)
        self.freeze_encoder = freeze_encoder
        self.n_classes = n_classes
        self._batch: Optional[GraphBatch] = None

    def parameters(self) -> List[Parameter]:
        params = [] if self.freeze_encoder else self.encoder.parameters()
        for layer in self.head_layers:
            params = params + layer.parameters()
        return params + self.head.parameters()

    def forward(self, batch: GraphBatch) -> np.ndarray:
        h = self.encoder.forward(batch.a_hat, batch.x)
        pooled = batch.pool_mean(h)
        self._batch = batch
        for layer in self.head_layers:
            pooled = layer.forward(pooled)
        return self.head.forward(pooled)

    def backward(self, dlogits: np.ndarray) -> np.ndarray:
        """Backpropagate; returns the gradient w.r.t. input node features.

        When the encoder is frozen its parameters still accumulate gradients
        (the optimizer simply never sees them), which keeps the input
        gradient available for the feature-mask explainer.
        """
        if self._batch is None:
            raise RuntimeError("backward called before forward")
        dpooled = self.head.backward(dlogits)
        for layer in reversed(self.head_layers):
            dpooled = layer.backward(dpooled)
        dh = self._batch.pool_mean_backward(dpooled)
        return self.encoder.backward(dh)

    def predict_proba(self, batch: GraphBatch) -> np.ndarray:
        from .loss import softmax

        return softmax(self.forward(batch))


class NodeClassifier(Module):
    """Encoder + linear head → per-node logits (for masked node labels)."""

    def __init__(
        self,
        n_features: int,
        hidden: Sequence[int] = (32, 32),
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.encoder = GCNEncoder(n_features, hidden, rng)
        self.head = Dense(self.encoder.n_out, 1, rng)

    def parameters(self) -> List[Parameter]:
        return self.encoder.parameters() + self.head.parameters()

    def forward(self, batch: GraphBatch) -> np.ndarray:
        h = self.encoder.forward(batch.a_hat, batch.x)
        return self.head.forward(h)[:, 0]

    def backward(self, dlogits: np.ndarray) -> None:
        dh = self.head.backward(dlogits[:, None])
        self.encoder.backward(dh)

    def predict_proba(self, batch: GraphBatch) -> np.ndarray:
        from .loss import sigmoid

        return sigmoid(self.forward(batch))
