"""GCN model assemblies: encoder, graph classifier, node classifier.

The three paper models share these shapes:

* **Tier-predictor** — ``GraphClassifier``: GCN layers, mean graph pooling,
  softmax over tiers.
* **MIV-pinpointer** — ``NodeClassifier``: GCN layers, per-node sigmoid
  restricted to MIV nodes.
* **Classifier** — ``GraphClassifier`` built on the Tier-predictor's
  *pre-trained, frozen* encoder (network-based deep transfer learning) with a
  fresh trainable head.

Every model runs on a pluggable tensor backend (``backend=`` or
``$REPRO_NN_BACKEND``; numpy is the reference oracle).  Batches enter as
host-side :class:`~repro.nn.data.GraphBatch` objects; each forward lifts the
features once, packs the block-diagonal CSR adjacency (and the mean-pooling
matrix) into the backend's SpMM handle, and hands opaque tensors down the
layer stack.  ``predict_proba`` always returns host numpy arrays.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from .backends import get_backend
from .data import GraphBatch
from .layers import BackendSpec, Dense, GCNLayer, Module, Parameter

__all__ = ["GCNEncoder", "GraphClassifier", "NodeClassifier"]


class GCNEncoder(Module):
    """A stack of GCN layers producing node embeddings."""

    def __init__(
        self,
        n_in: int,
        hidden: Sequence[int],
        rng: np.random.Generator,
        backend: BackendSpec = None,
    ) -> None:
        self.backend = get_backend(backend)
        self.layers: List[GCNLayer] = []
        prev = n_in
        for width in hidden:
            self.layers.append(GCNLayer(prev, width, rng, activation=True, backend=self.backend))
            prev = width
        self.n_out = prev

    def parameters(self) -> List[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def modules(self) -> List[Module]:
        return list(self.layers)

    def _direct_parameters(self) -> List[Parameter]:
        return []

    def forward(self, a_hat: Any, x: Any) -> Any:
        h = x
        for layer in self.layers:
            h = layer.forward(a_hat, h)
        return h

    def backward(self, dh: Any) -> Any:
        for layer in reversed(self.layers):
            dh = layer.backward(dh)
        return dh


class GraphClassifier(Module):
    """Encoder + mean pooling + linear head → per-graph logits."""

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        hidden: Sequence[int] = (32, 32),
        seed: int = 0,
        encoder: Optional[GCNEncoder] = None,
        freeze_encoder: bool = False,
        head_hidden: Sequence[int] = (),
        backend: BackendSpec = None,
    ) -> None:
        # A supplied (transfer) encoder fixes the backend unless one is
        # named explicitly, in which case the encoder is migrated to it.
        if backend is None and encoder is not None:
            self.backend = encoder.backend
        else:
            self.backend = get_backend(backend)
        if encoder is not None and encoder.backend is not self.backend:
            encoder.to_backend(self.backend)
        rng = np.random.default_rng(seed)
        self.encoder = (
            encoder if encoder is not None else GCNEncoder(n_features, hidden, rng, self.backend)
        )
        self.head_layers: List[Dense] = []
        prev = self.encoder.n_out
        for width in head_hidden:
            self.head_layers.append(Dense(prev, width, rng, activation=True, backend=self.backend))
            prev = width
        self.head = Dense(prev, n_classes, rng, backend=self.backend)
        self.freeze_encoder = freeze_encoder
        self.n_classes = n_classes
        self._cache: Optional[Tuple[Any, Any]] = None

    def parameters(self) -> List[Parameter]:
        params = [] if self.freeze_encoder else self.encoder.parameters()
        for layer in self.head_layers:
            params = params + layer.parameters()
        return params + self.head.parameters()

    def modules(self) -> List[Module]:
        return [self.encoder, *self.head_layers, self.head]

    def _direct_parameters(self) -> List[Parameter]:
        return []

    def forward(self, batch: GraphBatch) -> Any:
        be = self.backend
        a_hat = be.sparse(batch.a_hat)
        h = self.encoder.forward(a_hat, be.asarray(batch.x))
        pool = be.sparse(batch.pool_matrix())
        counts = be.asarray(batch.graph_counts())[:, None]
        pooled = be.spmm(pool, h) / counts
        self._cache = (pool, counts)
        for layer in self.head_layers:
            pooled = layer.forward(pooled)
        return self.head.forward(pooled)

    def backward(self, dlogits: Any) -> Any:
        """Backpropagate; returns the gradient w.r.t. input node features.

        When the encoder is frozen its parameters still accumulate gradients
        (the optimizer simply never sees them), which keeps the input
        gradient available for the feature-mask explainer.
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        be = self.backend
        pool, counts = self._cache
        dpooled = self.head.backward(dlogits)
        for layer in reversed(self.head_layers):
            dpooled = layer.backward(dpooled)
        dh = be.spmm_t(pool, dpooled / counts)
        return self.encoder.backward(dh)

    def predict_proba(self, batch: GraphBatch) -> np.ndarray:
        from .loss import softmax

        return self.backend.to_numpy(softmax(self.forward(batch)))


class NodeClassifier(Module):
    """Encoder + linear head → per-node logits (for masked node labels)."""

    def __init__(
        self,
        n_features: int,
        hidden: Sequence[int] = (32, 32),
        seed: int = 0,
        backend: BackendSpec = None,
    ) -> None:
        self.backend = get_backend(backend)
        rng = np.random.default_rng(seed)
        self.encoder = GCNEncoder(n_features, hidden, rng, self.backend)
        self.head = Dense(self.encoder.n_out, 1, rng, backend=self.backend)

    def parameters(self) -> List[Parameter]:
        return self.encoder.parameters() + self.head.parameters()

    def modules(self) -> List[Module]:
        return [self.encoder, self.head]

    def _direct_parameters(self) -> List[Parameter]:
        return []

    def forward(self, batch: GraphBatch) -> Any:
        be = self.backend
        a_hat = be.sparse(batch.a_hat)
        h = self.encoder.forward(a_hat, be.asarray(batch.x))
        return self.head.forward(h)[:, 0]

    def backward(self, dlogits: Any) -> None:
        dh = self.head.backward(dlogits[:, None])
        self.encoder.backward(dh)

    def predict_proba(self, batch: GraphBatch) -> np.ndarray:
        from .loss import sigmoid

        return self.backend.to_numpy(sigmoid(self.forward(batch)))
