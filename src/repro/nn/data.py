"""Graph containers and block-diagonal batching for the GCN models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = [
    "GraphData",
    "GraphBatch",
    "build_batch",
    "normalized_adjacency",
    "split_node_values",
]


@dataclass
class GraphData:
    """One sub-graph sample.

    Attributes:
        x: Node features, shape (n_nodes, n_features).
        edges: Directed edge list as (src, dst) index arrays.
        y: Graph-level label (e.g. faulty tier), or -1 when absent.
        node_y: Per-node labels, shape (n_nodes,), or None.
        node_mask: Per-node loss mask (e.g. MIV nodes), or None.
        meta: Free-form payload (sample back-references).
    """

    x: np.ndarray
    edges: Tuple[np.ndarray, np.ndarray]
    y: int = -1
    node_y: Optional[np.ndarray] = None
    node_mask: Optional[np.ndarray] = None
    meta: object = None
    _a_hat: Optional[sp.csr_matrix] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_nodes(self) -> int:
        return self.x.shape[0]

    def a_hat(self) -> sp.csr_matrix:
        """The graph's normalized adjacency, computed once and memoized.

        Every model forward over this graph needs the same matrix; in the
        serving path three models (tier, MIV, classifier) batch the same
        request sub-graphs, so recomputing per forward tripled the dominant
        per-request cost.  Graphs are construct-once containers everywhere
        in this codebase — ``edges`` must not be mutated after first use.
        """
        if self._a_hat is None:
            self._a_hat = normalized_adjacency(self.n_nodes, self.edges)
        return self._a_hat


def normalized_adjacency(
    n_nodes: int, edges: Tuple[np.ndarray, np.ndarray]
) -> sp.csr_matrix:
    """Row-normalized symmetric adjacency with self-loops (eq. (1) mean).

    Edges are symmetrized because fault effects relate nodes in both
    directions (drive and observe); the self-loop keeps a node's own features
    in its update.
    """
    src, dst = edges
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    loops = np.arange(n_nodes, dtype=np.int64)
    rows = np.concatenate([src, dst, loops])
    cols = np.concatenate([dst, src, loops])
    data = np.ones(len(rows))
    adj = sp.csr_matrix((data, (rows, cols)), shape=(n_nodes, n_nodes))
    adj.sum_duplicates()
    adj.data[:] = 1.0  # collapse multi-edges
    deg = np.asarray(adj.sum(axis=1)).ravel()
    deg[deg == 0] = 1.0
    inv = sp.diags(1.0 / deg)
    return (inv @ adj).tocsr()


@dataclass
class GraphBatch:
    """Several graphs packed into one block-diagonal problem.

    Attributes:
        x: Stacked node features, (n_total, n_features).
        a_hat: Block-diagonal normalized adjacency.
        graph_ids: Graph index per node, (n_total,).
        n_graphs: Number of graphs in the batch.
        y: Graph labels, (n_graphs,).
        node_y: Stacked node labels (zeros where absent).
        node_mask: Stacked node masks (False where absent).
    """

    x: np.ndarray
    a_hat: sp.csr_matrix
    graph_ids: np.ndarray
    n_graphs: int
    y: np.ndarray
    node_y: np.ndarray
    node_mask: np.ndarray
    _pool_csr: Optional[sp.csr_matrix] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_nodes(self) -> int:
        return self.x.shape[0]

    def graph_counts(self) -> np.ndarray:
        """Node count per graph as float (zero-node graphs count as 1)."""
        counts = np.bincount(self.graph_ids, minlength=self.n_graphs).astype(float)
        counts[counts == 0] = 1.0
        return counts

    def pool_matrix(self) -> sp.csr_matrix:
        """(n_graphs, n_nodes) membership matrix with unit entries.

        ``pool_matrix() @ H`` sums node embeddings per graph through the same
        backend SpMM path as the graph convolutions; dividing by
        :meth:`graph_counts` afterwards reproduces :meth:`pool_mean` bitwise
        (identical accumulation order, identical final division).
        """
        if self._pool_csr is None:
            data = np.ones(self.n_nodes)
            cols = np.arange(self.n_nodes, dtype=np.int64)
            self._pool_csr = sp.csr_matrix(
                (data, (self.graph_ids, cols)), shape=(self.n_graphs, self.n_nodes)
            )
        return self._pool_csr

    def pool_mean(self, h: np.ndarray) -> np.ndarray:
        """Per-graph mean pooling of node embeddings."""
        n_feat = h.shape[1]
        sums = np.zeros((self.n_graphs, n_feat))
        np.add.at(sums, self.graph_ids, h)
        counts = np.bincount(self.graph_ids, minlength=self.n_graphs).astype(float)
        counts[counts == 0] = 1.0
        return sums / counts[:, None]

    def pool_mean_backward(self, dpool: np.ndarray) -> np.ndarray:
        """Gradient of mean pooling back to node embeddings."""
        counts = np.bincount(self.graph_ids, minlength=self.n_graphs).astype(float)
        counts[counts == 0] = 1.0
        return dpool[self.graph_ids] / counts[self.graph_ids][:, None]


def split_node_values(batch: GraphBatch, values: np.ndarray) -> List[np.ndarray]:
    """Split a per-node array back into per-graph arrays (unpack a batch).

    The inverse of the node-dimension concatenation :func:`build_batch`
    performs: ``values`` holds one entry per batch node (e.g. the node
    classifier's per-node probabilities over the whole block-diagonal
    batch) and the result is one array per member graph, in batch order.
    """
    values = np.asarray(values)
    if values.shape[0] != batch.n_nodes:
        raise ValueError(
            f"per-node values have {values.shape[0]} entries, "
            f"batch has {batch.n_nodes} nodes"
        )
    counts = np.bincount(batch.graph_ids, minlength=batch.n_graphs)
    return np.split(values, np.cumsum(counts)[:-1])


def build_batch(graphs: Sequence[GraphData]) -> GraphBatch:
    """Pack graphs into one block-diagonal batch."""
    if not graphs:
        raise ValueError("cannot batch zero graphs")
    xs: List[np.ndarray] = []
    blocks: List[sp.csr_matrix] = []
    gids: List[np.ndarray] = []
    ys: List[int] = []
    node_ys: List[np.ndarray] = []
    node_masks: List[np.ndarray] = []
    for i, g in enumerate(graphs):
        xs.append(np.asarray(g.x, dtype=np.float64))
        blocks.append(g.a_hat())
        gids.append(np.full(g.n_nodes, i, dtype=np.int64))
        ys.append(g.y)
        node_ys.append(
            np.zeros(g.n_nodes) if g.node_y is None else np.asarray(g.node_y, dtype=float)
        )
        node_masks.append(
            np.zeros(g.n_nodes, dtype=bool)
            if g.node_mask is None
            else np.asarray(g.node_mask, dtype=bool)
        )
    return GraphBatch(
        x=np.concatenate(xs, axis=0),
        a_hat=sp.block_diag(blocks, format="csr"),
        graph_ids=np.concatenate(gids),
        n_graphs=len(graphs),
        y=np.asarray(ys, dtype=np.int64),
        node_y=np.concatenate(node_ys),
        node_mask=np.concatenate(node_masks),
    )
