"""Principal component analysis (for the Fig. 5 feature-space study)."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["PCA"]


class PCA:
    """SVD-based PCA with the usual fit/transform API.

    Attributes:
        components_: (n_components, n_features) principal axes.
        explained_variance_ratio_: Fraction of variance per component.
    """

    def __init__(self, n_components: int = 2) -> None:
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("PCA expects a 2-D sample matrix")
        if x.shape[0] < 2:
            raise ValueError("PCA needs at least two samples")
        self.mean_ = x.mean(axis=0)
        centered = x - self.mean_
        _u, s, vt = np.linalg.svd(centered, full_matrices=False)
        var = (s ** 2) / max(x.shape[0] - 1, 1)
        total = var.sum() or 1.0
        k = min(self.n_components, vt.shape[0])
        self.components_ = vt[:k]
        self.explained_variance_ratio_ = var[:k] / total
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted")
        return (np.asarray(x, dtype=float) - self.mean_) @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
