"""The tensor-backend interface every GNN compute engine implements.

The nn stack (layers, losses, optimizers, pooling) is written against this
small op set instead of numpy directly, so the same model code runs on the
dependency-free numpy/scipy reference engine or on an optional accelerated
engine (torch CPU/GPU).  The contract mirrors the simulator's packed-vs-uint8
idiom: the numpy backend is the always-available oracle, and every other
backend is differential-tested against it (same seeds → same logits, losses,
and post-training predictions within documented tolerances).

Design rules:

* **Tensors are opaque.**  Model code may use the arithmetic operators
  (``+ - * / @``), broadcasting, and basic slicing — both ``np.ndarray`` and
  ``torch.Tensor`` support them — but every other operation goes through the
  backend.
* **State is backend-neutral.**  ``state_dict`` always yields float64 numpy
  arrays regardless of backend, so checkpoints and ``.npz`` model files
  interchange across backends (train on one, predict on another).
* **Sparse matrices enter as scipy CSR.**  ``sparse()`` packs a
  ``scipy.sparse.csr_matrix`` into whatever handle the backend's SpMM wants
  (for numpy, the matrix itself); ``spmm``/``spmm_t`` accept either a handle
  or a raw scipy matrix and wrap on the fly.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["TensorBackend", "BackendUnavailableError"]


class BackendUnavailableError(RuntimeError):
    """Requested backend's runtime (e.g. torch) is not importable."""


class TensorBackend:
    """Abstract tensor engine; see the numpy backend for reference semantics.

    Attributes:
        name: Engine family ("numpy", "torch").
        spec: Full re-creation spec ("numpy", "torch-cpu", "torch-cuda") —
            round-trips through :func:`repro.nn.backends.get_backend`, which
            also makes every backend picklable.
        device: Human-readable compute device ("cpu", "cuda:0").
    """

    name: str = "abstract"
    spec: str = "abstract"
    device: str = "cpu"

    # -------------------------------------------------------- construction
    def asarray(self, x: Any, dtype: Optional[type] = None) -> Any:
        """Lift array-likes onto this backend (float64 unless told otherwise).

        Must be cheap (no copy) when ``x`` already lives on this backend
        with the right dtype.
        """
        raise NotImplementedError

    def zeros(self, shape: Tuple[int, ...]) -> Any:
        raise NotImplementedError

    def zeros_like(self, t: Any) -> Any:
        raise NotImplementedError

    def onehot(self, labels: Any, n_classes: int) -> Any:
        """(n, n_classes) float64 one-hot rows from integer labels."""
        idx = np.asarray(self._to_host(labels), dtype=np.int64)
        out = np.zeros((idx.shape[0], n_classes))
        out[np.arange(idx.shape[0]), idx] = 1.0
        return self.asarray(out)

    # ----------------------------------------------------------- transfer
    def to_numpy(self, t: Any) -> np.ndarray:
        """Copy a backend tensor to a fresh host numpy array."""
        raise NotImplementedError

    def _to_host(self, t: Any) -> np.ndarray:
        """Host view for index math; may alias ``t`` when already host-side."""
        return t if isinstance(t, np.ndarray) else self.to_numpy(t)

    def copyto(self, dst: Any, src: Any) -> None:
        """In-place overwrite of a backend tensor from an array-like."""
        raise NotImplementedError

    def fill(self, t: Any, value: float) -> None:
        raise NotImplementedError

    def to_scalar(self, t: Any) -> float:
        raise NotImplementedError

    def dtype_of(self, t: Any) -> np.dtype:
        """The tensor's dtype as a numpy dtype (for state-file checks)."""
        raise NotImplementedError

    # --------------------------------------------------------- elementwise
    def exp(self, t: Any) -> Any:
        raise NotImplementedError

    def log(self, t: Any) -> Any:
        raise NotImplementedError

    def sqrt(self, t: Any) -> Any:
        raise NotImplementedError

    def relu(self, t: Any) -> Any:
        raise NotImplementedError

    def relu_grad(self, t: Any) -> Any:
        raise NotImplementedError

    def sigmoid(self, t: Any) -> Any:
        raise NotImplementedError

    def where(self, cond: Any, a: Any, b: Any) -> Any:
        raise NotImplementedError

    # ---------------------------------------------------------- reductions
    def sum(self, t: Any, axis: Optional[int] = None, keepdims: bool = False) -> Any:
        raise NotImplementedError

    def max(self, t: Any, axis: Optional[int] = None, keepdims: bool = False) -> Any:
        raise NotImplementedError

    # -------------------------------------------------------------- sparse
    def sparse(self, a: sp.spmatrix) -> Any:
        """Pack a scipy CSR matrix into this backend's SpMM handle."""
        raise NotImplementedError

    def spmm(self, a: Any, dense: Any) -> Any:
        """``A @ dense`` where ``a`` is a handle or raw scipy matrix."""
        raise NotImplementedError

    def spmm_t(self, a: Any, dense: Any) -> Any:
        """``A.T @ dense`` where ``a`` is a handle or raw scipy matrix."""
        raise NotImplementedError

    # ------------------------------------------------------------- plumbing
    def __reduce__(self):
        from . import get_backend

        return (get_backend, (self.spec,))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} spec={self.spec!r} device={self.device!r}>"
