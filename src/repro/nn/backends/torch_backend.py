"""Optional torch tensor backend (CPU or CUDA).

Imported lazily by the registry only when torch is installed; the rest of the
framework never depends on it.  Everything runs in float64 so the backend can
be differential-tested against the numpy oracle at tight tolerances —
throughput still wins on batched block-diagonal SpMM, and models can be moved
to float32/GPU-friendly regimes later without touching the interface.

Sparse matrices are packed once per forward pass into a pair of CSR tensors
(the matrix and its transpose) so both the forward ``A @ H`` and the backward
``A.T @ dH`` hit torch's native sparse-dense matmul.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import torch

from .base import TensorBackend

__all__ = ["TorchBackend"]


class _TorchCSR:
    """A scipy CSR packed for torch SpMM: forward and transposed tensors."""

    __slots__ = ("fwd", "bwd")

    def __init__(self, fwd: "torch.Tensor", bwd: "torch.Tensor") -> None:
        self.fwd = fwd
        self.bwd = bwd


class TorchBackend(TensorBackend):
    """Torch engine; ``device`` is "cpu" or "cuda"."""

    name = "torch"

    def __init__(self, device: str = "cpu") -> None:
        self.spec = f"torch-{device}"
        self.device = device
        self._device = torch.device(device)

    @staticmethod
    def _torch_dtype(dtype: Optional[type]) -> "torch.dtype":
        if dtype is None or dtype is float:
            return torch.float64
        return {
            bool: torch.bool,
            int: torch.int64,
            np.float64: torch.float64,
            np.float32: torch.float32,
            np.int64: torch.int64,
            np.bool_: torch.bool,
        }.get(dtype, torch.float64)

    def _scalar(self, x: Any) -> "torch.Tensor":
        if isinstance(x, torch.Tensor):
            return x
        return torch.as_tensor(x, dtype=torch.float64, device=self._device)

    # -------------------------------------------------------- construction
    def asarray(self, x: Any, dtype: Optional[type] = None) -> "torch.Tensor":
        td = self._torch_dtype(dtype)
        if isinstance(x, torch.Tensor):
            if x.dtype == td and x.device == self._device:
                return x
            return x.to(device=self._device, dtype=td)
        return torch.as_tensor(np.asarray(x), dtype=td, device=self._device)

    def zeros(self, shape: Tuple[int, ...]) -> "torch.Tensor":
        return torch.zeros(shape, dtype=torch.float64, device=self._device)

    def zeros_like(self, t: "torch.Tensor") -> "torch.Tensor":
        return torch.zeros_like(t)

    # ----------------------------------------------------------- transfer
    def to_numpy(self, t: "torch.Tensor") -> np.ndarray:
        if isinstance(t, np.ndarray):
            return np.array(t)
        return t.detach().cpu().numpy().copy()

    def copyto(self, dst: "torch.Tensor", src: Any) -> None:
        dst.copy_(torch.as_tensor(np.asarray(src)))

    def fill(self, t: "torch.Tensor", value: float) -> None:
        t.fill_(value)

    def to_scalar(self, t: Any) -> float:
        return float(t.item() if isinstance(t, torch.Tensor) else t)

    def dtype_of(self, t: "torch.Tensor") -> np.dtype:
        return np.dtype(str(t.dtype).replace("torch.", ""))

    # --------------------------------------------------------- elementwise
    def exp(self, t: "torch.Tensor") -> "torch.Tensor":
        return torch.exp(t)

    def log(self, t: "torch.Tensor") -> "torch.Tensor":
        return torch.log(t)

    def sqrt(self, t: "torch.Tensor") -> "torch.Tensor":
        return torch.sqrt(t)

    def relu(self, t: "torch.Tensor") -> "torch.Tensor":
        return torch.clamp_min(t, 0.0)

    def relu_grad(self, t: "torch.Tensor") -> "torch.Tensor":
        return (t > 0.0).to(t.dtype)

    def sigmoid(self, t: "torch.Tensor") -> "torch.Tensor":
        return torch.sigmoid(t)

    def where(self, cond: "torch.Tensor", a: Any, b: Any) -> "torch.Tensor":
        return torch.where(cond, self._scalar(a), self._scalar(b))

    # ---------------------------------------------------------- reductions
    def sum(self, t: "torch.Tensor", axis: Optional[int] = None, keepdims: bool = False) -> Any:
        if axis is None:
            return t.sum()
        return t.sum(dim=axis, keepdim=keepdims)

    def max(self, t: "torch.Tensor", axis: Optional[int] = None, keepdims: bool = False) -> Any:
        if axis is None:
            return t.max()
        return t.max(dim=axis, keepdim=keepdims).values

    # -------------------------------------------------------------- sparse
    def _pack_csr(self, a: sp.csr_matrix) -> "torch.Tensor":
        return torch.sparse_csr_tensor(
            torch.as_tensor(a.indptr, dtype=torch.int64),
            torch.as_tensor(a.indices, dtype=torch.int64),
            torch.as_tensor(a.data, dtype=torch.float64),
            size=a.shape,
        ).to(self._device)

    def sparse(self, a: sp.spmatrix) -> _TorchCSR:
        csr = a if isinstance(a, sp.csr_matrix) else a.tocsr()
        return _TorchCSR(self._pack_csr(csr), self._pack_csr(csr.T.tocsr()))

    def spmm(self, a: Any, dense: "torch.Tensor") -> "torch.Tensor":
        if not isinstance(a, _TorchCSR):
            a = self.sparse(a)
        return torch.matmul(a.fwd, dense)

    def spmm_t(self, a: Any, dense: "torch.Tensor") -> "torch.Tensor":
        if not isinstance(a, _TorchCSR):
            a = self.sparse(a)
        return torch.matmul(a.bwd, dense)
