"""Pluggable tensor backends for the GNN stack.

The numpy/scipy backend is always available and serves as the reference
oracle; a torch backend (CPU or CUDA) is auto-detected at import and used
when requested.  Selection order for :func:`get_backend`:

1. An explicit argument — a backend instance, or a spec string.
2. The ``REPRO_NN_BACKEND`` environment variable.
3. The default: ``numpy``.

Spec strings: ``numpy``, ``torch`` (CUDA when available, else CPU),
``torch-cpu``, ``torch-cuda``, and ``auto`` (best available: torch when
importable, numpy otherwise).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Union

from .base import BackendUnavailableError, TensorBackend
from .numpy_backend import NumpyBackend

__all__ = [
    "TensorBackend",
    "NumpyBackend",
    "BackendUnavailableError",
    "get_backend",
    "available_backends",
    "torch_available",
    "infer_backend",
]

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV_VAR = "REPRO_NN_BACKEND"

_CACHE: Dict[str, TensorBackend] = {"numpy": NumpyBackend()}
_TORCH_CHECKED = False
_TORCH = None


def _torch_module():
    """The torch module when importable, else None (checked once)."""
    global _TORCH_CHECKED, _TORCH
    if not _TORCH_CHECKED:
        _TORCH_CHECKED = True
        try:
            import torch as _torch_mod
        except ImportError:
            _TORCH = None
        else:
            _TORCH = _torch_mod
    return _TORCH


def torch_available() -> bool:
    """True when the optional torch backend can be constructed."""
    return _torch_module() is not None


def available_backends() -> List[str]:
    """Backend family names usable on this host (oracle always first)."""
    names = ["numpy"]
    if torch_available():
        names.append("torch")
    return names


def _torch_backend(device: str) -> TensorBackend:
    if _torch_module() is None:
        raise BackendUnavailableError(
            "the torch nn backend was requested but torch is not installed; "
            "install torch or use REPRO_NN_BACKEND=numpy"
        )
    from .torch_backend import TorchBackend

    return TorchBackend(device=device)


def get_backend(spec: Union[None, str, TensorBackend] = None) -> TensorBackend:
    """Resolve a backend from a spec, the environment, or the default.

    Args:
        spec: A :class:`TensorBackend` (returned as-is), a spec string, or
            None to consult ``$REPRO_NN_BACKEND`` and fall back to numpy.

    Raises:
        BackendUnavailableError: a torch spec on a torch-less host.
        ValueError: an unknown spec string.
    """
    if isinstance(spec, TensorBackend):
        return spec
    name = (spec or os.environ.get(BACKEND_ENV_VAR) or "numpy").strip().lower()
    if name == "auto":
        name = "torch" if torch_available() else "numpy"
    if name == "torch":
        torch = _torch_module()
        name = "torch-cuda" if (torch is not None and torch.cuda.is_available()) else "torch-cpu"
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    if name == "torch-cpu":
        backend = _torch_backend("cpu")
    elif name == "torch-cuda":
        backend = _torch_backend("cuda")
    else:
        raise ValueError(
            f"unknown nn backend {name!r}; expected one of: numpy, torch, "
            f"torch-cpu, torch-cuda, auto (available here: {available_backends()})"
        )
    _CACHE[name] = backend
    return backend


def infer_backend(x: Any) -> TensorBackend:
    """The backend a tensor belongs to (numpy for any host array-like)."""
    if type(x).__module__.partition(".")[0] == "torch":
        device = "cuda" if x.device.type == "cuda" else "cpu"
        return get_backend(f"torch-{device}")
    return _CACHE["numpy"]
