"""The numpy/scipy reference backend — the framework's differential oracle.

Semantics here *define* correctness: every other backend is tested against
this one the same way the packed fault simulator is tested against the uint8
reference.  The implementation is deliberately the seed nn stack's exact
numerics (same op order, same accumulation order), so refactoring the layers
through the backend interface left the numpy path bitwise identical.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .base import TensorBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(TensorBackend):
    """Dependency-free reference engine over ``np.ndarray`` / scipy CSR."""

    name = "numpy"
    spec = "numpy"
    device = "cpu"

    # -------------------------------------------------------- construction
    def asarray(self, x: Any, dtype: Optional[type] = None) -> np.ndarray:
        return np.asarray(x, dtype=np.float64 if dtype is None else dtype)

    def zeros(self, shape: Tuple[int, ...]) -> np.ndarray:
        return np.zeros(shape)

    def zeros_like(self, t: np.ndarray) -> np.ndarray:
        return np.zeros_like(t)

    # ----------------------------------------------------------- transfer
    def to_numpy(self, t: np.ndarray) -> np.ndarray:
        return np.array(t)

    def _to_host(self, t: np.ndarray) -> np.ndarray:
        return t

    def copyto(self, dst: np.ndarray, src: Any) -> None:
        dst[...] = src

    def fill(self, t: np.ndarray, value: float) -> None:
        t[...] = value

    def to_scalar(self, t: Any) -> float:
        return float(t)

    def dtype_of(self, t: np.ndarray) -> np.dtype:
        return t.dtype

    # --------------------------------------------------------- elementwise
    def exp(self, t: np.ndarray) -> np.ndarray:
        return np.exp(t)

    def log(self, t: np.ndarray) -> np.ndarray:
        return np.log(t)

    def sqrt(self, t: np.ndarray) -> np.ndarray:
        return np.sqrt(t)

    def relu(self, t: np.ndarray) -> np.ndarray:
        return np.maximum(t, 0.0)

    def relu_grad(self, t: np.ndarray) -> np.ndarray:
        return (t > 0.0).astype(t.dtype)

    def sigmoid(self, t: np.ndarray) -> np.ndarray:
        # Piecewise-stable: never exponentiates a large positive argument.
        t = np.asarray(t, dtype=np.float64)
        out = np.empty_like(t)
        pos = t >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-t[pos]))
        ex = np.exp(t[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def where(self, cond: np.ndarray, a: Any, b: Any) -> np.ndarray:
        return np.where(cond, a, b)

    # ---------------------------------------------------------- reductions
    def sum(self, t: np.ndarray, axis: Optional[int] = None, keepdims: bool = False) -> Any:
        return t.sum(axis=axis, keepdims=keepdims) if axis is not None else t.sum()

    def max(self, t: np.ndarray, axis: Optional[int] = None, keepdims: bool = False) -> Any:
        return t.max(axis=axis, keepdims=keepdims) if axis is not None else t.max()

    # -------------------------------------------------------------- sparse
    def sparse(self, a: sp.spmatrix) -> sp.csr_matrix:
        return a if isinstance(a, sp.csr_matrix) else a.tocsr()

    def spmm(self, a: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
        return a @ dense

    def spmm_t(self, a: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
        return a.T @ dense
