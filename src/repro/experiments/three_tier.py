"""Extension experiment: tier-level localization on a three-tier design.

The paper notes the Tier-predictor "can perform diagnosis on M3D designs
with more than two tiers by extending the dimension of the graph
representation vector".  This runner exercises that claim end-to-end: a
3-tier k-way partition, MIVs per (net, destination tier), a 3-class
Tier-predictor, and the pruning policy keeping only the predicted tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.pipeline import M3DDiagnosisFramework
from ..data.datagen import DesignConfig, prepare_design
from ..data.datasets import build_dataset
from ..diagnosis.effect_cause import EffectCauseDiagnoser
from ..diagnosis.report import ReportQuality, summarize_reports
from .benchmarks import benchmark

__all__ = ["ThreeTierResult", "three_tier_study", "format_three_tier"]


@dataclass
class ThreeTierResult:
    """Outcome of the 3-tier extension experiment."""

    n_tiers: int
    mivs: int
    tier_accuracy: float
    per_tier_accuracy: List[float]
    atpg: ReportQuality
    framework: ReportQuality


def three_tier_study(
    name: str = "AES",
    mode: str = "bypass",
    n_train: int = 300,
    n_test: int = 60,
    epochs: int = 40,
    scale: str = "default",
) -> ThreeTierResult:
    """Train and evaluate the framework on a 3-tier partition of ``name``."""
    spec = benchmark(name, scale)
    config = DesignConfig("3T", n_tiers=3, partition_seed=2)
    design = prepare_design(
        spec.generator,
        config,
        n_chains=spec.n_chains,
        chains_per_channel=spec.chains_per_channel,
        max_patterns=spec.max_patterns,
    )
    train = build_dataset(design, mode, n_train, seed=7100)
    test = build_dataset(design, mode, n_test, seed=7200)

    fw = M3DDiagnosisFramework(epochs=epochs, seed=0, n_tiers=3)
    fw.fit([train])

    tier_graphs = [g for g in test.graphs if g.y >= 0]
    preds = fw.tier_predictor.predict(tier_graphs)
    truth = np.asarray([g.y for g in tier_graphs])
    acc = float(np.mean(preds == truth))
    per_tier = []
    for t in range(3):
        sel = truth == t
        per_tier.append(float(np.mean(preds[sel] == t)) if sel.any() else 0.0)

    diag = EffectCauseDiagnoser(
        design.nl, design.obsmap(mode), design.patterns, mivs=design.mivs, sim=design.sim
    )
    reports = [diag.diagnose(item.sample.log) for item in test.items]
    policy = fw.policy_for(design)
    outs = [policy.apply(r, item.graph) for r, item in zip(reports, test.items)]
    truths = [item.faults for item in test.items]
    return ThreeTierResult(
        n_tiers=3,
        mivs=len(design.mivs),
        tier_accuracy=acc,
        per_tier_accuracy=per_tier,
        atpg=summarize_reports(zip(reports, truths)),
        framework=summarize_reports(zip([o.report for o in outs], truths)),
    )


def format_three_tier(r: ThreeTierResult) -> str:
    """Printable 3-tier extension summary."""
    per = " ".join(f"t{t}={a:.1%}" for t, a in enumerate(r.per_tier_accuracy))
    return "\n".join(
        [
            "Extension: three-tier M3D localization",
            f"MIVs (per net, per destination tier): {r.mivs}",
            f"Tier-predictor accuracy: {r.tier_accuracy:.1%}  ({per})",
            f"ATPG     : acc={r.atpg.accuracy:.1%} res={r.atpg.mean_resolution:.1f} "
            f"fhi={r.atpg.mean_fhi:.1f}",
            f"Framework: acc={r.framework.accuracy:.1%} "
            f"res={r.framework.mean_resolution:.1f} fhi={r.framework.mean_fhi:.1f}",
        ]
    )
