"""Table III — design matrix of the M3D benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .benchmarks import BENCHMARK_NAMES, benchmark
from .common import get_prepared

__all__ = ["DesignMatrixRow", "design_matrix", "format_design_matrix"]


@dataclass
class DesignMatrixRow:
    """One benchmark's row: measured values plus the paper's for reference."""

    design: str
    gates: int
    mivs: int
    n_chains: int
    n_channels: int
    chain_length: int
    n_patterns: int
    fault_coverage: float
    paper_gates: int
    paper_mivs: int
    paper_patterns: int
    paper_fc: float


def design_matrix(scale: str = "default") -> List[DesignMatrixRow]:
    """Regenerate Table III for the scaled benchmark suite (Syn-1 config)."""
    rows: List[DesignMatrixRow] = []
    for name in BENCHMARK_NAMES:
        spec = benchmark(name, scale)
        design = get_prepared(name, "Syn-1", scale)
        rows.append(
            DesignMatrixRow(
                design=name,
                gates=design.nl.n_gates,
                mivs=len(design.mivs),
                n_chains=design.scan.n_chains,
                n_channels=design.scan.n_channels,
                chain_length=design.scan.chain_length,
                n_patterns=design.patterns.n_patterns,
                fault_coverage=design.atpg.fault_coverage,
                paper_gates=spec.paper_gates,
                paper_mivs=spec.paper_mivs,
                paper_patterns=spec.paper_patterns,
                paper_fc=spec.paper_fc,
            )
        )
    return rows


def format_design_matrix(rows: List[DesignMatrixRow]) -> str:
    """Printable Table III."""
    lines = [
        "Table III: design matrix of M3D benchmarks (measured | paper)",
        f"{'Design':10s} {'Ng':>6s} {'#MIVs':>6s} {'Nsc(Nch)':>9s} "
        f"{'ChainLen':>8s} {'#Pat':>6s} {'FC':>6s}   {'paper Ng':>9s} {'paper FC':>8s}",
    ]
    for r in rows:
        lines.append(
            f"{r.design:10s} {r.gates:6d} {r.mivs:6d} "
            f"{r.n_chains:4d}({r.n_channels})  {r.chain_length:8d} "
            f"{r.n_patterns:6d} {r.fault_coverage:6.1%}   "
            f"{r.paper_gates:9,d} {r.paper_fc:8.1%}"
        )
    return "\n".join(lines)
