"""Table II — feature significance scores via the GNNExplainer stand-in.

The learned feature-mask explainer assigns each of the 13 Table II features
a significance score in [0, 1]; the paper's observation is that the
top-level (Topedge-derived) features score on par with the circuit-level
ones, justifying the heterogeneous graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.features import FEATURE_NAMES
from ..nn.explain import feature_mask_significance, permutation_importance
from .common import TEST_SAMPLES, get_dataset, get_framework

__all__ = ["SignificanceRow", "feature_significance", "format_significance"]

#: Indices of the Topedge-derived (top-level) features in FEATURE_NAMES.
TOP_LEVEL_FEATURES = (2, 9, 10, 11, 12)


@dataclass
class SignificanceRow:
    """Significance of one node feature."""

    feature: str
    significance: float
    permutation_drop: float
    is_top_level: bool


def feature_significance(
    name: str = "Tate",
    mode: str = "bypass",
    n_samples: int = TEST_SAMPLES,
    scale: str = "default",
) -> List[SignificanceRow]:
    """Regenerate the Table II significance column on a trained model."""
    framework, _stats = get_framework(name, mode, scale=scale)
    test = get_dataset(name, "Syn-1", mode, "single", n_samples, seed=5555, scale=scale)
    graphs = framework.tier_predictor.scaler.transform(
        [g for g in test.graphs if g.y >= 0]
    )
    mask = feature_mask_significance(framework.tier_predictor.model, graphs)
    drops = permutation_importance(framework.tier_predictor.model, graphs)
    rows = [
        SignificanceRow(
            feature=FEATURE_NAMES[i],
            significance=float(mask[i]),
            permutation_drop=float(drops[i]),
            is_top_level=i in TOP_LEVEL_FEATURES,
        )
        for i in range(len(FEATURE_NAMES))
    ]
    return rows


def format_significance(rows: List[SignificanceRow]) -> str:
    """Printable Table II significance scores."""
    lines = [
        "Table II: feature significance (learned mask; permutation drop as check)",
        f"{'Feature':24s} {'Level':>6s} {'Signif.':>8s} {'PermDrop':>9s}",
    ]
    for r in rows:
        level = "top" if r.is_top_level else "ckt"
        lines.append(
            f"{r.feature:24s} {level:>6s} {r.significance:8.4f} {r.permutation_drop:+9.4f}"
        )
    top = [r.significance for r in rows if r.is_top_level]
    ckt = [r.significance for r in rows if not r.is_top_level]
    lines.append(
        f"mean significance: top-level={np.mean(top):.4f} circuit-level={np.mean(ckt):.4f}"
    )
    return "\n".join(lines)
