"""Scaled benchmark suite mirroring the paper's design matrix (Table III).

The paper's benchmarks are 98K–338K-gate commercial syntheses; the offline
reproduction scales each design down ~100× while preserving the *relative*
ordering (AES < Tate < netcard < leon3mp), the flop-to-gate ratios, and each
design's structural flavor.  The compaction ratio is scaled from the paper's
20× to 4× so compacted channels still contain several chains at this size.

Two scales are provided:

* ``default`` — used by the benchmark harness to regenerate the paper's
  tables;
* ``tiny``    — fast variants for unit/integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..netlist.generators import GeneratorSpec

__all__ = ["BenchmarkSpec", "BENCHMARKS", "benchmark", "BENCHMARK_NAMES"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark's generation and DfT parameters.

    Attributes:
        name: Benchmark name (paper naming).
        generator: Synthetic netlist generation parameters.
        n_chains: Scan chains.
        chains_per_channel: Compaction ratio (paper: 20, scaled: 4).
        max_patterns: ATPG pattern budget.
        paper_gates / paper_mivs / paper_patterns / paper_fc: The paper's
            Table III values, kept for the paper-vs-measured report.
    """

    name: str
    generator: GeneratorSpec
    n_chains: int
    chains_per_channel: int
    max_patterns: int
    paper_gates: int
    paper_mivs: int
    paper_patterns: int
    paper_fc: float


def _suite(scale: str) -> Dict[str, BenchmarkSpec]:
    if scale == "default":
        sizes = {
            "AES": (700, 80, 32, 32, 8, 192),
            "Tate": (950, 104, 32, 32, 8, 192),
            "netcard": (1200, 128, 48, 48, 16, 192),
            "leon3mp": (1500, 160, 48, 48, 16, 192),
        }
    elif scale == "tiny":
        sizes = {
            "AES": (220, 32, 16, 16, 4, 96),
            "Tate": (300, 40, 16, 16, 4, 96),
            "netcard": (380, 48, 16, 16, 8, 96),
            "leon3mp": (460, 56, 16, 16, 8, 96),
        }
    else:
        raise ValueError(f"unknown scale {scale!r}")

    flavors = {
        "AES": "aes_like",
        "Tate": "tate_like",
        "netcard": "netcard_like",
        "leon3mp": "leon3mp_like",
    }
    paper = {
        "AES": (98_000, 71_000, 767, 0.983),
        "Tate": (187_000, 143_000, 432, 0.986),
        "netcard": (220_000, 173_000, 40_438, 0.973),
        "leon3mp": (338_000, 250_000, 18_737, 0.991),
    }
    seeds = {"AES": 1, "Tate": 2, "netcard": 4, "leon3mp": 5}

    suite: Dict[str, BenchmarkSpec] = {}
    for name, (gates, flops, pis, pos, chains, patterns) in sizes.items():
        pg, pm, pp, pfc = paper[name]
        suite[name] = BenchmarkSpec(
            name=name,
            generator=GeneratorSpec(
                name=name.lower(),
                flavor=flavors[name],
                n_gates=gates,
                n_flops=flops,
                n_pis=pis,
                n_pos=pos,
                seed=seeds[name],
            ),
            n_chains=chains,
            chains_per_channel=4,
            max_patterns=patterns,
            paper_gates=pg,
            paper_mivs=pm,
            paper_patterns=pp,
            paper_fc=pfc,
        )
    return suite


#: Benchmark suites keyed by scale.
BENCHMARKS: Dict[str, Dict[str, BenchmarkSpec]] = {
    "default": _suite("default"),
    "tiny": _suite("tiny"),
}

BENCHMARK_NAMES: Tuple[str, ...] = ("AES", "Tate", "netcard", "leon3mp")


def benchmark(name: str, scale: str = "default") -> BenchmarkSpec:
    """Look up one benchmark spec."""
    return BENCHMARKS[scale][name]
