"""Tables VI and VIII — effectiveness of delay-fault localization.

Per (benchmark, configuration): the 2D baseline [11] (PADRE-like filter),
the proposed framework standalone (GNN candidate pruning/reordering), and
the combined GNN + [11] flow, each summarized as accuracy / resolution / FHI
plus the tier-localization percentage, without (Table VI) or with
(Table VIII) response compaction.

Tier-localization accounting follows the paper: reports already localized by
ATPG (all candidates in one tier) are excluded; the baseline localizes a
report when every remaining candidate sits in the ground-truth faulty tier;
the proposed framework localizes it when the Tier-predictor names that tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..diagnosis.baseline import PadreLikeFilter
from ..diagnosis.report import DiagnosisReport, ReportQuality, summarize_reports
from .benchmarks import BENCHMARK_NAMES
from .common import TEST_SAMPLES, get_atpg_reports, get_dataset, get_framework, get_prepared

__all__ = ["MethodResult", "EffectivenessRow", "effectiveness", "format_effectiveness"]

CONFIGS = ("Syn-1", "TPI", "Syn-2", "Par")


@dataclass
class MethodResult:
    """Quality + tier localization for one method on one design point."""

    quality: ReportQuality
    tier_localization: Optional[float]


@dataclass
class EffectivenessRow:
    """One (benchmark, configuration) row of Table VI / VIII."""

    design: str
    config: str
    atpg: MethodResult
    baseline: MethodResult
    gnn: MethodResult
    combined: MethodResult


def _tier_of_candidates(report: DiagnosisReport) -> set:
    return {c.tier for c in report.candidates if c.tier is not None}


def effectiveness(
    mode: str,
    designs: Sequence[str] = BENCHMARK_NAMES,
    configs: Sequence[str] = CONFIGS,
    n_samples: int = TEST_SAMPLES,
    scale: str = "default",
) -> List[EffectivenessRow]:
    """Regenerate Table VI (``mode="bypass"``) or VIII (``mode="compacted"``)."""
    rows: List[EffectivenessRow] = []
    for name in designs:
        framework, _stats = get_framework(name, mode, scale=scale)
        for config in configs:
            design = get_prepared(name, config, scale)
            dataset = get_dataset(name, config, mode, "single", n_samples, scale=scale)
            reports, _t = get_atpg_reports(name, config, mode, "single", n_samples, scale=scale)
            filt = PadreLikeFilter(design.nl)
            policy = framework.policy_for(design)

            base_reports = [filt.filter(r) for r in reports]
            policy_results = [
                policy.apply(r, item.graph) for r, item in zip(reports, dataset.items)
            ]
            gnn_reports = [pr.report for pr in policy_results]
            combined_reports = [filt.filter(r) for r in gnn_reports]

            truths = [item.faults for item in dataset.items]

            # Tier localization over reports ATPG did not already localize,
            # restricted to samples with a single-tier ground truth.
            eligible = [
                i
                for i, (rep, item) in enumerate(zip(reports, dataset.items))
                if item.graph.y >= 0 and len(_tier_of_candidates(rep)) > 1
            ]

            def local_frac(per_index) -> Optional[float]:
                if not eligible:
                    return None
                return sum(per_index(i) for i in eligible) / len(eligible)

            base_local = local_frac(
                lambda i: int(
                    _tier_of_candidates(base_reports[i]) == {dataset.items[i].graph.y}
                )
            )
            gnn_local = local_frac(
                lambda i: int(policy_results[i].predicted_tier == dataset.items[i].graph.y)
            )

            rows.append(
                EffectivenessRow(
                    design=name,
                    config=config,
                    atpg=MethodResult(
                        summarize_reports(zip(reports, truths)), None
                    ),
                    baseline=MethodResult(
                        summarize_reports(zip(base_reports, truths)), base_local
                    ),
                    gnn=MethodResult(
                        summarize_reports(zip(gnn_reports, truths)), gnn_local
                    ),
                    combined=MethodResult(
                        summarize_reports(zip(combined_reports, truths)), gnn_local
                    ),
                )
            )
    return rows


def _fmt_method(m: MethodResult, ref: ReportQuality) -> str:
    q = m.quality
    dacc = q.accuracy - ref.accuracy
    dres = (
        (ref.mean_resolution - q.mean_resolution) / ref.mean_resolution
        if ref.mean_resolution
        else 0.0
    )
    dfhi = (ref.mean_fhi - q.mean_fhi) / ref.mean_fhi if ref.mean_fhi else 0.0
    local = f"{m.tier_localization:6.1%}" if m.tier_localization is not None else "   n/a"
    return (
        f"acc={q.accuracy:6.1%}({dacc:+5.1%}) "
        f"res={q.mean_resolution:5.1f}({dres:+6.1%}) "
        f"fhi={q.mean_fhi:4.1f}({dfhi:+6.1%}) loc={local}"
    )


def format_effectiveness(rows: List[EffectivenessRow], title: str) -> str:
    """Printable Table VI/VIII (deltas are vs. the ATPG report)."""
    lines = [title]
    for r in rows:
        ref = r.atpg.quality
        lines.append(f"{r.design} / {r.config}  (ATPG: acc={ref.accuracy:.1%} "
                     f"res={ref.mean_resolution:.1f} fhi={ref.mean_fhi:.1f})")
        lines.append(f"  baseline[11] : {_fmt_method(r.baseline, ref)}")
        lines.append(f"  GNN          : {_fmt_method(r.gnn, ref)}")
        lines.append(f"  GNN+[11]     : {_fmt_method(r.combined, ref)}")
    return "\n".join(lines)
