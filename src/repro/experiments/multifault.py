"""Table X — diagnosis of designs with tier-systematic multiple faults.

2–5 TDFs confined to one tier are injected per chip (the paper's model of
fabrication-related systematic defects).  Models are trained on Syn-1
multi-fault samples and evaluated on Syn-2 — transferability under the
multi-fault regime.  A report is accurate only when *all* injected faults
appear in the candidate list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.pipeline import M3DDiagnosisFramework
from ..diagnosis.report import ReportQuality, summarize_reports
from .benchmarks import BENCHMARK_NAMES
from .common import TEST_SAMPLES, get_atpg_reports, get_dataset, get_prepared

__all__ = ["MultiFaultRow", "multifault_study", "format_multifault"]


@dataclass
class MultiFaultRow:
    """One benchmark's Table X row."""

    design: str
    atpg: ReportQuality
    framework: ReportQuality
    tier_localization: float


def multifault_study(
    designs: Sequence[str] = BENCHMARK_NAMES,
    mode: str = "bypass",
    n_train: int = 200,
    n_test: int = TEST_SAMPLES,
    epochs: int = 40,
    scale: str = "default",
) -> List[MultiFaultRow]:
    """Regenerate Table X (train Syn-1 multi-fault, test Syn-2)."""
    rows: List[MultiFaultRow] = []
    for name in designs:
        train = get_dataset(name, "Syn-1", mode, "multi", n_train, seed=3100, scale=scale)
        test = get_dataset(name, "Syn-2", mode, "multi", n_test, seed=3200, scale=scale)
        design = get_prepared(name, "Syn-2", scale)
        reports, _t = get_atpg_reports(name, "Syn-2", mode, "multi", n_test, seed=3200, scale=scale)

        framework = M3DDiagnosisFramework(epochs=epochs, seed=0, use_miv_pinpointer=False)
        framework.fit([train])
        policy = framework.policy_for(design)
        results = [policy.apply(r, item.graph) for r, item in zip(reports, test.items)]

        truths = [item.faults for item in test.items]
        atpg_q = summarize_reports(zip(reports, truths))
        fw_q = summarize_reports(zip([res.report for res in results], truths))

        labeled = [
            (res, item) for res, item in zip(results, test.items) if item.graph.y >= 0
        ]
        tier_local = (
            float(np.mean([res.predicted_tier == item.graph.y for res, item in labeled]))
            if labeled
            else 0.0
        )
        rows.append(
            MultiFaultRow(design=name, atpg=atpg_q, framework=fw_q, tier_localization=tier_local)
        )
    return rows


def format_multifault(rows: List[MultiFaultRow]) -> str:
    """Printable Table X."""
    lines = [
        "Table X: multiple delay-fault localization (2-5 TDFs in one tier, Syn-2 test)",
        f"{'Design':10s} {'ATPG acc':>9s} {'ATPG res':>9s} {'ATPG fhi':>9s} "
        f"{'FW acc':>8s} {'FW res':>8s} {'FW fhi':>8s} {'TierLoc':>8s}",
    ]
    for r in rows:
        lines.append(
            f"{r.design:10s} {r.atpg.accuracy:9.1%} {r.atpg.mean_resolution:9.1f} "
            f"{r.atpg.mean_fhi:9.1f} {r.framework.accuracy:8.1%} "
            f"{r.framework.mean_resolution:8.1f} {r.framework.mean_fhi:8.1f} "
            f"{r.tier_localization:8.1%}"
        )
    return "\n".join(lines)
