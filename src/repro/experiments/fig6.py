"""Fig. 6 — dedicated vs. transferred model accuracy across configurations.

*Dedicated* models are trained on each configuration's own samples;
the *Transferred* model is trained once on Syn-1 plus randomly-partitioned
netlists (the paper's data augmentation) and evaluated on every
configuration without retraining.  The paper's finding: the transferred
model matches (and on unseen configurations sometimes beats) the dedicated
ones, for both Tier-predictor and MIV-pinpointer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .common import TEST_SAMPLES, get_dataset, get_dedicated_framework, get_framework

__all__ = ["TransferabilityRow", "transferability_study", "format_transferability"]

CONFIGS = ("Syn-1", "TPI", "Syn-2", "Par")


@dataclass
class TransferabilityRow:
    """Accuracy of both models on one configuration."""

    config: str
    dedicated_tier: float
    transferred_tier: float
    dedicated_miv: float
    transferred_miv: float


def transferability_study(
    benchmark_name: str = "Tate",
    mode: str = "bypass",
    configs: Sequence[str] = CONFIGS,
    n_samples: int = TEST_SAMPLES,
    scale: str = "default",
) -> List[TransferabilityRow]:
    """Regenerate the Fig. 6 comparison for one benchmark."""
    transferred, _stats = get_framework(benchmark_name, mode, scale=scale)
    rows: List[TransferabilityRow] = []
    for config in configs:
        dedicated, _dstats = get_dedicated_framework(benchmark_name, config, mode, scale=scale)
        test = get_dataset(
            benchmark_name, config, mode, "single", n_samples, seed=8888, scale=scale
        )
        tier_graphs = [g for g in test.graphs if g.y >= 0]
        row = TransferabilityRow(
            config=config,
            dedicated_tier=dedicated.tier_predictor.accuracy(tier_graphs),
            transferred_tier=transferred.tier_predictor.accuracy(tier_graphs),
            dedicated_miv=(
                dedicated.miv_pinpointer.sample_accuracy(test.graphs)
                if dedicated.miv_pinpointer
                else 0.0
            ),
            transferred_miv=(
                transferred.miv_pinpointer.sample_accuracy(test.graphs)
                if transferred.miv_pinpointer
                else 0.0
            ),
        )
        rows.append(row)
    return rows


def format_transferability(rows: List[TransferabilityRow], benchmark_name: str) -> str:
    """Printable Fig. 6 table."""
    lines = [
        f"Fig. 6: dedicated vs transferred model accuracy ({benchmark_name})",
        f"{'Config':8s} {'Tier ded.':>10s} {'Tier transf.':>13s} "
        f"{'MIV ded.':>10s} {'MIV transf.':>12s}",
    ]
    for r in rows:
        lines.append(
            f"{r.config:8s} {r.dedicated_tier:10.1%} {r.transferred_tier:13.1%} "
            f"{r.dedicated_miv:10.1%} {r.transferred_miv:12.1%}"
        )
    return "\n".join(lines)
