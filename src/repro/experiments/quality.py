"""Tables V and VII — quality of ATPG diagnosis reports.

Accuracy, mean/std diagnostic resolution, and mean/std FHI of the raw
effect-cause (commercial stand-in) reports per benchmark and configuration,
without (Table V) and with (Table VII) response compaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..diagnosis.report import ReportQuality, summarize_reports
from .benchmarks import BENCHMARK_NAMES
from .common import TEST_SAMPLES, get_atpg_reports, get_dataset

__all__ = ["QualityRow", "atpg_quality", "format_quality"]

CONFIGS = ("Syn-1", "TPI", "Syn-2", "Par")


@dataclass
class QualityRow:
    """One (benchmark, configuration) row of Table V / VII."""

    design: str
    config: str
    quality: ReportQuality


def atpg_quality(
    mode: str,
    designs: Sequence[str] = BENCHMARK_NAMES,
    configs: Sequence[str] = CONFIGS,
    n_samples: int = TEST_SAMPLES,
    scale: str = "default",
) -> List[QualityRow]:
    """Regenerate Table V (``mode="bypass"``) or VII (``mode="compacted"``)."""
    rows: List[QualityRow] = []
    for name in designs:
        for config in configs:
            dataset = get_dataset(name, config, mode, "single", n_samples, scale=scale)
            reports, _t = get_atpg_reports(name, config, mode, "single", n_samples, scale=scale)
            quality = summarize_reports(
                (rep, item.faults) for rep, item in zip(reports, dataset.items)
            )
            rows.append(QualityRow(design=name, config=config, quality=quality))
    return rows


def format_quality(rows: List[QualityRow], title: str) -> str:
    """Printable Table V/VII."""
    lines = [
        title,
        f"{'Design':10s} {'Config':7s} {'Acc':>7s} {'mean res':>9s} {'std res':>8s} "
        f"{'mean FHI':>9s} {'std FHI':>8s} {'n':>4s}",
    ]
    for r in rows:
        q = r.quality
        lines.append(
            f"{r.design:10s} {r.config:7s} {q.accuracy:7.1%} {q.mean_resolution:9.1f} "
            f"{q.std_resolution:8.1f} {q.mean_fhi:9.1f} {q.std_fhi:8.1f} {q.n_samples:4d}"
        )
    return "\n".join(lines)
