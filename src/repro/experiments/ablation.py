"""Table XI and additional design-choice ablations.

Table XI: diagnosing AES/Syn-1 with each GNN model standalone — the
Tier-predictor drives resolution/FHI improvement but alone loses > 1%
accuracy by pruning MIV faults; the MIV-pinpointer alone barely changes
reports but recovers that loss when combined.  Following the paper, the test
set is augmented by ~10% with MIV-fault-only samples.

Extra ablations beyond the paper (DESIGN.md design-choice checks):

* ``threshold_sweep`` — diagnosis quality as the pruning threshold ``Tp``
  moves away from the PR-derived value.
* ``oversample_ablation`` — Classifier trained with vs. without
  dummy-buffer oversampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.pipeline import M3DDiagnosisFramework
from ..data.datasets import LabeledSample, SampleSet
from ..diagnosis.report import ReportQuality, summarize_reports
from .common import (
    TEST_SAMPLES,
    get_atpg_reports,
    get_dataset,
    get_diagnoser,
    get_framework,
    get_prepared,
)

__all__ = [
    "AblationRow",
    "standalone_models",
    "format_standalone",
    "threshold_sweep",
    "format_threshold_sweep",
]


@dataclass
class AblationRow:
    """One diagnosis-method row of Table XI."""

    method: str
    quality: ReportQuality


def _augmented_test(
    name: str, config: str, mode: str, n_samples: int, scale: str
) -> Tuple[SampleSet, list]:
    """Test set augmented ~10% with MIV-fault samples (paper Section VII-B)."""
    base = get_dataset(name, config, mode, "single", n_samples, scale=scale)
    extra = get_dataset(
        name, config, mode, "miv", max(1, n_samples // 10), seed=4242, scale=scale
    )
    items = list(base.items) + list(extra.items)
    diag = get_diagnoser(name, config, mode, scale)
    reports = [diag.diagnose(item.sample.log) for item in items]
    merged = SampleSet(design=base.design, mode=mode, items=items)
    return merged, reports


def standalone_models(
    name: str = "AES",
    config: str = "Syn-1",
    mode: str = "bypass",
    n_samples: int = TEST_SAMPLES,
    scale: str = "default",
) -> List[AblationRow]:
    """Regenerate Table XI: ATPG only / Tier-predictor only / MIV-pinpointer
    only / both."""
    design = get_prepared(name, config, scale)
    framework, _stats = get_framework(name, mode, scale=scale)
    test, reports = _augmented_test(name, config, mode, n_samples, scale)
    truths = [item.faults for item in test.items]

    rows: List[AblationRow] = [
        AblationRow("ATPG only", summarize_reports(zip(reports, truths)))
    ]

    variants = (
        ("Tier-predictor", True, False),
        ("MIV-pinpointer", False, True),
        ("Tier-predictor + MIV-pinpointer", True, True),
    )
    for label, use_tier, use_miv in variants:
        saved_miv = framework.miv_pinpointer
        if not use_miv:
            framework.miv_pinpointer = None
        policy = framework.policy_for(design, use_tier=use_tier)
        outs = [policy.apply(r, item.graph) for r, item in zip(reports, test.items)]
        framework.miv_pinpointer = saved_miv
        rows.append(
            AblationRow(label, summarize_reports(zip([o.report for o in outs], truths)))
        )
    return rows


def format_standalone(rows: List[AblationRow]) -> str:
    """Printable Table XI."""
    ref = rows[0].quality
    lines = [
        "Table XI: fault localization with individual models (AES, Syn-1, +10% MIV samples)",
        f"{'Method':32s} {'Acc':>7s} {'mean res':>9s} {'std res':>8s} "
        f"{'mean FHI':>9s} {'std FHI':>8s}",
    ]
    for r in rows:
        q = r.quality
        lines.append(
            f"{r.method:32s} {q.accuracy:7.1%} {q.mean_resolution:9.1f} "
            f"{q.std_resolution:8.1f} {q.mean_fhi:9.1f} {q.std_fhi:8.1f}"
        )
    return "\n".join(lines)


def threshold_sweep(
    name: str = "AES",
    config: str = "Syn-1",
    mode: str = "bypass",
    thresholds: Sequence[Optional[float]] = (None, 0.55, 0.75, 0.95),
    n_samples: int = TEST_SAMPLES,
    scale: str = "default",
) -> List[Tuple[str, ReportQuality]]:
    """Ablation: PR-derived ``Tp`` vs. fixed pruning thresholds.

    ``None`` means the framework's PR-curve-selected threshold.
    """
    design = get_prepared(name, config, scale)
    framework, _stats = get_framework(name, mode, scale=scale)
    test = get_dataset(name, config, mode, "single", n_samples, scale=scale)
    reports, _t = get_atpg_reports(name, config, mode, "single", n_samples, scale=scale)
    truths = [item.faults for item in test.items]

    out: List[Tuple[str, ReportQuality]] = []
    original = framework.tp_threshold
    for t in thresholds:
        framework.tp_threshold = original if t is None else t
        label = f"Tp=PR({original:.3f})" if t is None else f"Tp={t:.2f}"
        policy = framework.policy_for(design)
        outs = [policy.apply(r, item.graph) for r, item in zip(reports, test.items)]
        out.append((label, summarize_reports(zip([o.report for o in outs], truths))))
    framework.tp_threshold = original
    return out


def format_threshold_sweep(rows: List[Tuple[str, ReportQuality]]) -> str:
    """Printable threshold ablation."""
    lines = [
        "Ablation: pruning threshold Tp (PR-derived vs fixed)",
        f"{'Threshold':16s} {'Acc':>7s} {'mean res':>9s} {'mean FHI':>9s}",
    ]
    for label, q in rows:
        lines.append(
            f"{label:16s} {q.accuracy:7.1%} {q.mean_resolution:9.1f} {q.mean_fhi:9.1f}"
        )
    return "\n".join(lines)


def feature_ablation(
    name: str = "AES",
    mode: str = "bypass",
    n_samples: int = TEST_SAMPLES,
    epochs: int = 40,
    scale: str = "default",
) -> List[Tuple[str, float]]:
    """Ablation: Tier-predictor accuracy with top-level features removed.

    Checks the Table II claim that Topedge-derived features carry weight:
    zeroing them (so only circuit-level descriptors remain) should not beat
    the full feature set.
    """
    from ..core.tier_predictor import TierPredictor
    from ..nn.data import GraphData
    from .significance import TOP_LEVEL_FEATURES

    train = get_dataset(name, "Syn-1", mode, "single", n_samples * 4, seed=6100, scale=scale)
    test = get_dataset(name, "Syn-2", mode, "single", n_samples, seed=6200, scale=scale)

    def zero_top(graphs):
        out = []
        for g in graphs:
            x = g.x.copy()
            x[:, list(TOP_LEVEL_FEATURES)] = 0.0
            out.append(GraphData(x=x, edges=g.edges, y=g.y, node_y=g.node_y,
                                 node_mask=g.node_mask, meta=g.meta))
        return out

    results: List[Tuple[str, float]] = []
    for label, transform in (("all 13 features", lambda gs: gs), ("circuit-level only", zero_top)):
        tp = TierPredictor(epochs=epochs, seed=0)
        tp.fit(transform([g for g in train.graphs if g.y >= 0]))
        acc = tp.accuracy(transform([g for g in test.graphs if g.y >= 0]))
        results.append((label, acc))
    return results


def oversample_ablation(
    name: str = "AES",
    mode: str = "bypass",
    n_samples: int = TEST_SAMPLES,
    scale: str = "default",
) -> List[Tuple[str, float, float]]:
    """Ablation: Classifier trained with vs. without dummy-buffer oversampling.

    Returns (label, FP recall, TP recall) — without oversampling the
    imbalanced TP:FP set lets the minority (False Positive) class collapse.
    """
    import numpy as np

    from ..core.classifier import PruneReorderClassifier
    from ..core.oversample import oversample_minority

    framework, _stats = get_framework(name, mode, scale=scale)
    train = get_dataset(name, "Syn-1", mode, "single", n_samples * 4, seed=6300, scale=scale)
    graphs = [g for g in train.graphs if g.y >= 0]
    proba = framework.tier_predictor.predict_proba(graphs)
    conf = proba.max(axis=1)
    correct = np.argmax(proba, axis=1) == np.asarray([g.y for g in graphs])
    positive = conf > framework.tp_threshold
    tp_graphs = [g for g, p, c in zip(graphs, positive, correct) if p and c]
    fp_graphs = [g for g, p, c in zip(graphs, positive, correct) if p and not c]
    if len(fp_graphs) < 2 or len(tp_graphs) < 4:
        # Degenerate split at this scale; report trivial recalls.
        return [("with oversampling", 0.0, 1.0), ("without oversampling", 0.0, 1.0)]

    split = max(1, len(fp_graphs) // 2)
    fp_train, fp_test = fp_graphs[:split], fp_graphs[split:]
    tp_split = max(2, len(tp_graphs) // 2)
    tp_train, tp_test = tp_graphs[:tp_split], tp_graphs[tp_split:]

    results: List[Tuple[str, float, float]] = []
    for label, balance in (("with oversampling", True), ("without oversampling", False)):
        clf = PruneReorderClassifier(framework.tier_predictor, epochs=25, seed=4)
        if balance:
            clf.fit(tp_train, fp_train)
        else:
            # Bypass the oversampler: train on the raw imbalanced set.
            graphs_raw = [clf._relabel(g, 1) for g in tp_train] + [
                clf._relabel(g, 0) for g in fp_train
            ]
            from ..core.training import train_graph_classifier

            train_graph_classifier(
                clf.model, clf.scaler.transform(graphs_raw), epochs=25, seed=4
            )
            clf._fitted = True
        fp_recall = (
            float(np.mean(clf.prune_probability(fp_test) <= 0.5)) if fp_test else 1.0
        )
        tp_recall = float(np.mean(clf.prune_probability(tp_test) > 0.5))
        results.append((label, fp_recall, tp_recall))
    return results
