"""Table IX and Figs. 9/10 — runtime analysis and PFA time savings.

Table IX measures per benchmark: feature construction (heterogeneous graph
build), GNN training, ``T_ATPG`` (diagnosing the Syn-2 test set with the
effect-cause tool), ``T_GNN`` (back-trace + model inference over the same
set), and ``T_update`` (candidate pruning and reordering).

Fig. 10 derives the PFA time saved per chip when each candidate costs ``x``
seconds of physical failure analysis::

    T_total(ATPG)     = T_ATPG + FHI_ATPG * x
    T_total(proposed) = max(T_ATPG, T_GNN) + T_update + FHI_upd * x
    T_diff(x)         = T_total(ATPG) - T_total(proposed)

summed over the test set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.hetgraph import HetGraph
from ..diagnosis.report import first_hit_index
from .benchmarks import BENCHMARK_NAMES
from .common import (
    TEST_SAMPLES,
    get_atpg_reports,
    get_dataset,
    get_framework,
    get_prepared,
)

__all__ = ["RuntimeRow", "runtime_table", "format_runtime", "pfa_savings", "format_pfa_savings"]


@dataclass
class RuntimeRow:
    """One benchmark's Table IX row (seconds)."""

    design: str
    feature_construction_s: float
    gnn_training_s: float
    t_atpg_s: float
    t_gnn_s: float
    t_update_s: float
    fhi_atpg: float
    fhi_updated: float
    n_samples: int


def runtime_table(
    designs: Sequence[str] = BENCHMARK_NAMES,
    mode: str = "bypass",
    config: str = "Syn-2",
    n_samples: int = TEST_SAMPLES,
    scale: str = "default",
) -> List[RuntimeRow]:
    """Regenerate Table IX (deployment on the Syn-2 test sets)."""
    rows: List[RuntimeRow] = []
    for name in designs:
        design = get_prepared(name, config, scale)
        framework, stats = get_framework(name, mode, scale=scale)
        dataset = get_dataset(name, config, mode, "single", n_samples, scale=scale)
        reports, t_atpg = get_atpg_reports(name, config, mode, "single", n_samples, scale=scale)

        t0 = time.perf_counter()
        HetGraph.build(design.nl, design.mivs, design.good.transitions())
        t_feature = time.perf_counter() - t0

        # T_GNN: back-trace + model inference per failure log.
        t0 = time.perf_counter()
        graphs = []
        for item in dataset.items:
            graphs.append(framework.subgraph_for_log(design, mode, item.sample.log))
        usable = [g for g in graphs if g is not None]
        framework.tier_predictor.predict_proba(usable)
        if framework.miv_pinpointer is not None:
            for g in usable:
                framework.miv_pinpointer.predict_node_proba(g)
        t_gnn = time.perf_counter() - t0

        # T_update: the candidate pruning and reordering pass.
        policy = framework.policy_for(design)
        t0 = time.perf_counter()
        results = [
            policy.apply(rep, g) if g is not None else None
            for rep, g in zip(reports, graphs)
        ]
        t_update = time.perf_counter() - t0

        fhi_a: List[int] = []
        fhi_u: List[int] = []
        for item, rep, res in zip(dataset.items, reports, results):
            fa = first_hit_index(rep, item.faults)
            if fa is not None:
                fhi_a.append(fa)
            if res is not None:
                fu = first_hit_index(res.report, item.faults)
                if fu is not None:
                    fhi_u.append(fu)
        rows.append(
            RuntimeRow(
                design=name,
                feature_construction_s=t_feature,
                gnn_training_s=stats["train_time_s"],
                t_atpg_s=t_atpg,
                t_gnn_s=t_gnn,
                t_update_s=t_update,
                fhi_atpg=float(np.mean(fhi_a)) if fhi_a else 0.0,
                fhi_updated=float(np.mean(fhi_u)) if fhi_u else 0.0,
                n_samples=len(dataset.items),
            )
        )
    return rows


def format_runtime(rows: List[RuntimeRow]) -> str:
    """Printable Table IX."""
    lines = [
        "Table IX: runtime of the proposed framework (seconds, Syn-2 test sets)",
        f"{'Design':10s} {'FeatCon':>8s} {'GNNtrain':>9s} {'T_ATPG':>8s} "
        f"{'T_GNN':>8s} {'T_update':>9s}",
    ]
    for r in rows:
        lines.append(
            f"{r.design:10s} {r.feature_construction_s:8.2f} {r.gnn_training_s:9.2f} "
            f"{r.t_atpg_s:8.2f} {r.t_gnn_s:8.2f} {r.t_update_s:9.3f}"
        )
    return "\n".join(lines)


def pfa_savings(
    rows: Sequence[RuntimeRow],
    x_values: Sequence[float] = (1.0, 10.0, 100.0, 1000.0),
) -> Dict[str, List[Tuple[float, float]]]:
    """Fig. 10: per-benchmark ``T_diff(x)`` over the PFA cost per candidate."""
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for r in rows:
        pts: List[Tuple[float, float]] = []
        for x in x_values:
            total_atpg = r.t_atpg_s + r.fhi_atpg * x * r.n_samples
            total_prop = (
                max(r.t_atpg_s, r.t_gnn_s)
                + r.t_update_s
                + r.fhi_updated * x * r.n_samples
            )
            pts.append((x, total_atpg - total_prop))
        curves[r.design] = pts
    return curves


def format_pfa_savings(curves: Dict[str, List[Tuple[float, float]]]) -> str:
    """Printable Fig. 10 series."""
    lines = ["Fig. 10: PFA time saved T_diff(x) in seconds (positive = framework wins)"]
    for design, pts in curves.items():
        series = "  ".join(f"x={x:g}: {d:+.1f}" for x, d in pts)
        lines.append(f"{design:10s} {series}")
    return "\n".join(lines)
