"""Experiment runners regenerating every table and figure of the paper."""

from .benchmarks import BENCHMARK_NAMES, BENCHMARKS, BenchmarkSpec, benchmark
from .common import (
    TEST_SAMPLES,
    TRAIN_SAMPLES_PER_DESIGN,
    get_atpg_reports,
    get_dataset,
    get_dedicated_framework,
    get_diagnoser,
    get_framework,
    get_prepared,
)
from .table3 import DesignMatrixRow, design_matrix, format_design_matrix
from .quality import QualityRow, atpg_quality, format_quality
from .effectiveness import EffectivenessRow, MethodResult, effectiveness, format_effectiveness
from .fig5 import PcaStudy, format_pca_study, pca_study
from .fig6 import TransferabilityRow, format_transferability, transferability_study
from .runtime import (
    RuntimeRow,
    format_pfa_savings,
    format_runtime,
    pfa_savings,
    runtime_table,
)
from .multifault import MultiFaultRow, format_multifault, multifault_study
from .ablation import (
    AblationRow,
    format_standalone,
    format_threshold_sweep,
    standalone_models,
    threshold_sweep,
)
from .significance import SignificanceRow, feature_significance, format_significance

__all__ = [
    "BENCHMARK_NAMES",
    "BENCHMARKS",
    "BenchmarkSpec",
    "benchmark",
    "TEST_SAMPLES",
    "TRAIN_SAMPLES_PER_DESIGN",
    "get_atpg_reports",
    "get_dataset",
    "get_dedicated_framework",
    "get_diagnoser",
    "get_framework",
    "get_prepared",
    "DesignMatrixRow",
    "design_matrix",
    "format_design_matrix",
    "QualityRow",
    "atpg_quality",
    "format_quality",
    "EffectivenessRow",
    "MethodResult",
    "effectiveness",
    "format_effectiveness",
    "PcaStudy",
    "format_pca_study",
    "pca_study",
    "TransferabilityRow",
    "format_transferability",
    "transferability_study",
    "RuntimeRow",
    "format_pfa_savings",
    "format_runtime",
    "pfa_savings",
    "runtime_table",
    "MultiFaultRow",
    "format_multifault",
    "multifault_study",
    "AblationRow",
    "format_standalone",
    "format_threshold_sweep",
    "standalone_models",
    "threshold_sweep",
    "SignificanceRow",
    "feature_significance",
    "format_significance",
]
