"""Fig. 5 — PCA of sub-graph feature vectors across design configurations.

The paper shows that sub-graph feature distributions of all configurations
of one benchmark overlap heavily in PCA space, which is why models transfer.
The runner projects per-sample mean feature vectors to two components and
quantifies overlap: per-configuration centroids, within-configuration
spread, and the ratio of between-centroid distance to spread (≪ 1 means the
clouds overlap as in the paper's figure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.features import graph_feature_vector
from ..nn.pca import PCA
from .common import TEST_SAMPLES, get_dataset

__all__ = ["PcaStudy", "pca_study", "format_pca_study"]

CONFIGS = ("Syn-1", "TPI", "Syn-2", "Par")


@dataclass
class PcaStudy:
    """PCA projection of sub-graph features per configuration.

    Attributes:
        points: Config name → (n, 2) projected sample coordinates.
        centroids: Config name → 2-vector centroid.
        spreads: Config name → RMS distance of samples to their centroid.
        overlap_ratio: max centroid-pair distance / mean spread (≪ 1 ⇒ the
            configurations overlap, the Fig. 5 conclusion).
        explained: Variance fraction captured by the two components.
    """

    points: Dict[str, np.ndarray]
    centroids: Dict[str, np.ndarray]
    spreads: Dict[str, float]
    overlap_ratio: float
    explained: Tuple[float, float]


def pca_study(
    benchmark_name: str = "Tate",
    mode: str = "bypass",
    configs: Sequence[str] = CONFIGS,
    n_samples: int = TEST_SAMPLES,
    scale: str = "default",
) -> PcaStudy:
    """Regenerate the Fig. 5 feature-space visualization data."""
    vectors: List[np.ndarray] = []
    labels: List[str] = []
    for config in configs:
        dataset = get_dataset(benchmark_name, config, mode, "single", n_samples, scale=scale)
        for g in dataset.graphs:
            vectors.append(graph_feature_vector(g))
            labels.append(config)
    x = np.asarray(vectors)
    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std[std == 0] = 1.0
    pca = PCA(n_components=2)
    proj = pca.fit_transform((x - mean) / std)

    points: Dict[str, np.ndarray] = {}
    centroids: Dict[str, np.ndarray] = {}
    spreads: Dict[str, float] = {}
    for config in configs:
        sel = np.asarray([l == config for l in labels])
        pts = proj[sel]
        points[config] = pts
        centroids[config] = pts.mean(axis=0)
        spreads[config] = float(np.sqrt(((pts - pts.mean(axis=0)) ** 2).sum(axis=1).mean()))

    max_dist = 0.0
    names = list(configs)
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            d = float(np.linalg.norm(centroids[names[i]] - centroids[names[j]]))
            max_dist = max(max_dist, d)
    mean_spread = float(np.mean(list(spreads.values()))) or 1.0
    ev = pca.explained_variance_ratio_
    return PcaStudy(
        points=points,
        centroids=centroids,
        spreads=spreads,
        overlap_ratio=max_dist / mean_spread,
        explained=(float(ev[0]), float(ev[1]) if len(ev) > 1 else 0.0),
    )


def format_pca_study(study: PcaStudy) -> str:
    """Printable Fig. 5 summary."""
    lines = [
        "Fig. 5: PCA of sub-graph feature vectors (per-config clusters)",
        f"explained variance: PC1={study.explained[0]:.1%} PC2={study.explained[1]:.1%}",
        f"{'Config':8s} {'centroid':>20s} {'spread':>8s} {'n':>5s}",
    ]
    for config, pts in study.points.items():
        c = study.centroids[config]
        lines.append(
            f"{config:8s} ({c[0]:8.3f}, {c[1]:8.3f}) {study.spreads[config]:8.3f} {len(pts):5d}"
        )
    lines.append(
        f"overlap ratio (max centroid dist / mean spread): {study.overlap_ratio:.3f} "
        f"(<1 means configurations overlap, as in the paper)"
    )
    return "\n".join(lines)
