"""Shared, cached experiment plumbing.

Preparing a design (ATPG + heterogeneous graph) and training the framework
are the expensive steps; every table/figure runner funnels through the
memoized helpers here so one pytest/benchmark session pays each cost once.

All design preparation and dataset construction goes through the
process-global :class:`repro.runtime.DatasetRuntime`, so every experiment
gains worker fan-out and the on-disk artifact cache for free — configure it
with ``repro.runtime.configure(workers=..., cache_dir=...)`` (or the
``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` environment variables) *before* the
first helper call; results are byte-identical for any worker count.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.augment import augmentation_configs, build_training_sets
from ..core.pipeline import M3DDiagnosisFramework
from ..data.datagen import DesignConfig, PreparedDesign
from ..data.datasets import SampleSet
from ..diagnosis.effect_cause import EffectCauseDiagnoser
from ..diagnosis.report import DiagnosisReport
from ..runtime import get_runtime
from .benchmarks import BenchmarkSpec, benchmark

__all__ = [
    "get_prepared",
    "get_prepared_many",
    "get_dataset",
    "get_framework",
    "get_dedicated_framework",
    "get_diagnoser",
    "get_atpg_reports",
    "TRAIN_SAMPLES_PER_DESIGN",
    "TEST_SAMPLES",
]

#: Scaled counterparts of the paper's 5000-sample training sets and
#: 750-sample test sets (~1/10; override per call for quick runs).
TRAIN_SAMPLES_PER_DESIGN = 160
TEST_SAMPLES = 60


def _prepare_kwargs(spec: BenchmarkSpec) -> Dict[str, int]:
    return dict(
        n_chains=spec.n_chains,
        chains_per_channel=spec.chains_per_channel,
        max_patterns=spec.max_patterns,
    )


#: Per-process memo of prepared bundles, keyed (benchmark, config, scale).
#: A plain dict (not lru_cache) so :func:`get_prepared_many` can prime it
#: after one parallel fan-out.
_PREPARED: Dict[Tuple[str, str, str], PreparedDesign] = {}


def get_prepared(name: str, config_name: str, scale: str = "default") -> PreparedDesign:
    """Prepared design bundle for one (benchmark, configuration) point."""
    return get_prepared_many(name, [config_name], scale)[0]


def get_prepared_many(
    name: str, config_names: Sequence[str], scale: str = "default"
) -> List[PreparedDesign]:
    """Several configuration points of one benchmark, prepared in one fan-out.

    Uses :meth:`DatasetRuntime.prepare_many` so cache misses build in
    parallel, then primes the per-process memo so later single-point
    :func:`get_prepared` lookups are free.
    """
    missing = [c for c in config_names if (name, c, scale) not in _PREPARED]
    if missing:
        spec: BenchmarkSpec = benchmark(name, scale)
        points = [
            (spec.generator, DesignConfig.standard(c), _prepare_kwargs(spec))
            for c in missing
        ]
        for c, design in zip(missing, get_runtime().prepare_many(points)):
            _PREPARED[(name, c, scale)] = design
    return [_PREPARED[(name, c, scale)] for c in config_names]


@functools.lru_cache(maxsize=None)
def get_dataset(
    name: str,
    config_name: str,
    mode: str,
    kind: str = "single",
    n_samples: int = TEST_SAMPLES,
    seed: int = 7777,
    scale: str = "default",
) -> SampleSet:
    """Cached injected dataset for one design point."""
    design = get_prepared(name, config_name, scale)
    return get_runtime().build_dataset(design, mode, n_samples, seed, kind)


@functools.lru_cache(maxsize=None)
def get_framework(
    name: str,
    mode: str,
    scale: str = "default",
    n_random: int = 2,
    n_train: int = TRAIN_SAMPLES_PER_DESIGN,
    epochs: int = 40,
    seed: int = 0,
    use_miv_pinpointer: bool = True,
    use_classifier: bool = True,
) -> Tuple[M3DDiagnosisFramework, Dict[str, float]]:
    """The *Transferred Model*: trained on Syn-1 + random partitions.

    Returns (framework, fit statistics incl. training time).
    """
    designs = get_prepared_many(
        name, [cfg.name for cfg in augmentation_configs(n_random)], scale
    )
    sets = build_training_sets(designs, mode, n_train, seed=1000 + seed)
    fw = M3DDiagnosisFramework(
        epochs=epochs,
        seed=seed,
        use_miv_pinpointer=use_miv_pinpointer,
        use_classifier=use_classifier,
    )
    t0 = time.perf_counter()
    # With a cache configured, every training stage checkpoints: an
    # interrupted tables/fit run re-invoked with the same inputs resumes
    # from the last completed model instead of retraining from scratch.
    stats = fw.fit(sets, stats_sink=get_runtime().stats,
                   checkpoint=get_runtime().cache, tracer=get_runtime().tracer)
    stats["train_time_s"] = time.perf_counter() - t0
    stats["n_train_graphs"] = float(sum(len(s) for s in sets))
    return fw, stats


@functools.lru_cache(maxsize=None)
def get_dedicated_framework(
    name: str,
    config_name: str,
    mode: str,
    scale: str = "default",
    n_train: int = TRAIN_SAMPLES_PER_DESIGN * 3,
    epochs: int = 40,
    seed: int = 0,
) -> Tuple[M3DDiagnosisFramework, Dict[str, float]]:
    """The *Dedicated Model*: trained on one configuration's own samples."""
    design = get_prepared(name, config_name, scale)
    train = get_runtime().build_dataset(design, mode, n_train, 2000 + seed, "single")
    fw = M3DDiagnosisFramework(epochs=epochs, seed=seed)
    t0 = time.perf_counter()
    stats = fw.fit([train], stats_sink=get_runtime().stats,
                   checkpoint=get_runtime().cache, tracer=get_runtime().tracer)
    stats["train_time_s"] = time.perf_counter() - t0
    return fw, stats


@functools.lru_cache(maxsize=None)
def get_diagnoser(name: str, config_name: str, mode: str, scale: str = "default") -> EffectCauseDiagnoser:
    """The ATPG diagnosis tool stand-in bound to one design point."""
    design = get_prepared(name, config_name, scale)
    return EffectCauseDiagnoser(
        design.nl,
        design.obsmap(mode),
        design.patterns,
        mivs=design.mivs,
        sim=design.sim,
    )


@functools.lru_cache(maxsize=None)
def get_atpg_reports(
    name: str,
    config_name: str,
    mode: str,
    kind: str = "single",
    n_samples: int = TEST_SAMPLES,
    seed: int = 7777,
    scale: str = "default",
) -> Tuple[Tuple[DiagnosisReport, ...], float]:
    """ATPG reports for a cached test set; returns (reports, total seconds)."""
    dataset = get_dataset(name, config_name, mode, kind, n_samples, seed, scale)
    diag = get_diagnoser(name, config_name, mode, scale)
    rt = get_runtime()
    t0 = time.perf_counter()
    with rt.stats.timed("atpg.diagnose"), rt.tracer.span("atpg.diagnose"):
        reports = tuple(diag.diagnose(item.sample.log) for item in dataset.items)
        rt.tracer.count("reports", len(reports))
    return reports, time.perf_counter() - t0
