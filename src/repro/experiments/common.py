"""Shared, cached experiment plumbing.

Preparing a design (ATPG + heterogeneous graph) and training the framework
are the expensive steps; every table/figure runner funnels through the
memoized helpers here so one pytest/benchmark session pays each cost once.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.augment import augmentation_configs, build_training_sets
from ..core.pipeline import M3DDiagnosisFramework
from ..data.datagen import DesignConfig, PreparedDesign, prepare_design
from ..data.datasets import SampleSet, build_dataset
from ..diagnosis.effect_cause import EffectCauseDiagnoser
from ..diagnosis.report import DiagnosisReport
from .benchmarks import BenchmarkSpec, benchmark

__all__ = [
    "get_prepared",
    "get_dataset",
    "get_framework",
    "get_dedicated_framework",
    "get_diagnoser",
    "get_atpg_reports",
    "TRAIN_SAMPLES_PER_DESIGN",
    "TEST_SAMPLES",
]

#: Scaled counterparts of the paper's 5000-sample training sets and
#: 750-sample test sets (~1/10; override per call for quick runs).
TRAIN_SAMPLES_PER_DESIGN = 160
TEST_SAMPLES = 60


@functools.lru_cache(maxsize=None)
def get_prepared(name: str, config_name: str, scale: str = "default") -> PreparedDesign:
    """Prepared design bundle for one (benchmark, configuration) point."""
    spec: BenchmarkSpec = benchmark(name, scale)
    return prepare_design(
        spec.generator,
        DesignConfig.standard(config_name),
        n_chains=spec.n_chains,
        chains_per_channel=spec.chains_per_channel,
        max_patterns=spec.max_patterns,
    )


@functools.lru_cache(maxsize=None)
def get_dataset(
    name: str,
    config_name: str,
    mode: str,
    kind: str = "single",
    n_samples: int = TEST_SAMPLES,
    seed: int = 7777,
    scale: str = "default",
) -> SampleSet:
    """Cached injected dataset for one design point."""
    design = get_prepared(name, config_name, scale)
    return build_dataset(design, mode, n_samples, seed=seed, kind=kind)


@functools.lru_cache(maxsize=None)
def get_framework(
    name: str,
    mode: str,
    scale: str = "default",
    n_random: int = 2,
    n_train: int = TRAIN_SAMPLES_PER_DESIGN,
    epochs: int = 40,
    seed: int = 0,
    use_miv_pinpointer: bool = True,
    use_classifier: bool = True,
) -> Tuple[M3DDiagnosisFramework, Dict[str, float]]:
    """The *Transferred Model*: trained on Syn-1 + random partitions.

    Returns (framework, fit statistics incl. training time).
    """
    designs = [
        get_prepared(name, cfg.name, scale) for cfg in augmentation_configs(n_random)
    ]
    sets = build_training_sets(designs, mode, n_train, seed=1000 + seed)
    fw = M3DDiagnosisFramework(
        epochs=epochs,
        seed=seed,
        use_miv_pinpointer=use_miv_pinpointer,
        use_classifier=use_classifier,
    )
    t0 = time.perf_counter()
    stats = fw.fit(sets)
    stats["train_time_s"] = time.perf_counter() - t0
    stats["n_train_graphs"] = float(sum(len(s) for s in sets))
    return fw, stats


@functools.lru_cache(maxsize=None)
def get_dedicated_framework(
    name: str,
    config_name: str,
    mode: str,
    scale: str = "default",
    n_train: int = TRAIN_SAMPLES_PER_DESIGN * 3,
    epochs: int = 40,
    seed: int = 0,
) -> Tuple[M3DDiagnosisFramework, Dict[str, float]]:
    """The *Dedicated Model*: trained on one configuration's own samples."""
    design = get_prepared(name, config_name, scale)
    train = build_dataset(design, mode, n_train, seed=2000 + seed, kind="single")
    fw = M3DDiagnosisFramework(epochs=epochs, seed=seed)
    t0 = time.perf_counter()
    stats = fw.fit([train])
    stats["train_time_s"] = time.perf_counter() - t0
    return fw, stats


@functools.lru_cache(maxsize=None)
def get_diagnoser(name: str, config_name: str, mode: str, scale: str = "default") -> EffectCauseDiagnoser:
    """The ATPG diagnosis tool stand-in bound to one design point."""
    design = get_prepared(name, config_name, scale)
    return EffectCauseDiagnoser(
        design.nl,
        design.obsmap(mode),
        design.patterns,
        mivs=design.mivs,
        sim=design.sim,
    )


@functools.lru_cache(maxsize=None)
def get_atpg_reports(
    name: str,
    config_name: str,
    mode: str,
    kind: str = "single",
    n_samples: int = TEST_SAMPLES,
    seed: int = 7777,
    scale: str = "default",
) -> Tuple[Tuple[DiagnosisReport, ...], float]:
    """ATPG reports for a cached test set; returns (reports, total seconds)."""
    dataset = get_dataset(name, config_name, mode, kind, n_samples, seed, scale)
    diag = get_diagnoser(name, config_name, mode, scale)
    t0 = time.perf_counter()
    reports = tuple(diag.diagnose(item.sample.log) for item in dataset.items)
    return reports, time.perf_counter() - t0
