"""SCOAP testability analysis (Goldstein, 1979).

Combinational controllability (``CC0``/``CC1`` — the effort to set a net to
0/1) and observability (``CO`` — the effort to propagate a net's value to an
observation point).  Used by the test-point inserter to rank hard-to-observe
nets and generally useful for triaging low-coverage regions of a design.

All measures follow the classic SCOAP recurrences; primary inputs and flop
outputs cost 1 to control, observed nets cost 0 to observe, and every gate
traversal adds 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .netlist import EXTERNAL_DRIVER, Gate, Netlist

__all__ = ["Testability", "compute_testability"]

#: Effectively-infinite SCOAP cost (unreachable/uncontrollable).
INF = 10 ** 9


@dataclass
class Testability:
    """SCOAP measures per net.

    Attributes:
        cc0: Controllability-to-0 per net id.
        cc1: Controllability-to-1 per net id.
        co: Observability per net id (INF when unobservable).
    """

    cc0: np.ndarray
    cc1: np.ndarray
    co: np.ndarray

    def hardest_to_observe(self, n: int) -> List[int]:
        """Net ids with the highest observability cost (ties by id)."""
        order = sorted(range(len(self.co)), key=lambda i: (-self.co[i], i))
        return order[:n]

    def hardest_to_control(self, n: int) -> List[int]:
        """Net ids with the highest min(CC0, CC1)."""
        cost = np.minimum(self.cc0, self.cc1)
        order = sorted(range(len(cost)), key=lambda i: (-cost[i], i))
        return order[:n]


def _gate_controllability(gate: Gate, cc0, cc1) -> Tuple[int, int]:
    """SCOAP CC0/CC1 of a gate output from its input controllabilities."""
    name = gate.cell.name
    ins = gate.fanin
    c0 = [cc0[n] for n in ins]
    c1 = [cc1[n] for n in ins]

    def add1(x: int) -> int:
        return min(x + 1, INF)

    if name == "BUF":
        return add1(c0[0]), add1(c1[0])
    if name == "INV":
        return add1(c1[0]), add1(c0[0])
    if name.startswith("AND"):
        return add1(min(c0)), add1(sum(c1))
    if name.startswith("NAND"):
        return add1(sum(c1)), add1(min(c0))
    if name.startswith("OR"):
        return add1(sum(c0)), add1(min(c1))
    if name.startswith("NOR"):
        return add1(min(c1)), add1(sum(c0))
    if name in ("XOR2", "XNOR2", "XOR3"):
        # Parity: cheapest way to an even/odd number of ones.
        best_even = 0
        best_odd = INF
        for a0, a1 in zip(c0, c1):
            even = min(best_even + a0, best_odd + a1)
            odd = min(best_even + a1, best_odd + a0)
            best_even, best_odd = even, odd
        if name == "XNOR2":
            return add1(best_odd), add1(best_even)
        return add1(best_even), add1(best_odd)
    if name == "MUX2":
        a0, b0, s0 = c0
        a1, b1, s1 = c1
        out0 = min(s0 + a0, s1 + b0)
        out1 = min(s0 + a1, s1 + b1)
        return add1(out0), add1(out1)
    if name == "AOI21":
        # out = NOT((a AND b) OR c)
        and0 = min(c0[0], c0[1])
        and1 = c1[0] + c1[1]
        out1 = and0 + c0[2]          # both OR terms 0
        out0 = min(and1, c1[2])      # any OR term 1
        return add1(out0), add1(out1)
    if name == "OAI21":
        # out = NOT((a OR b) AND c)
        or0 = c0[0] + c0[1]
        or1 = min(c1[0], c1[1])
        out1 = min(or0, c0[2])       # any AND term 0
        out0 = or1 + c1[2]           # both AND terms 1
        return add1(out0), add1(out1)
    raise KeyError(f"no SCOAP rule for cell {name!r}")


def _side_input_cost(gate: Gate, pin: int, cc0, cc1) -> int:
    """Cost of setting a gate's *other* inputs to non-controlling values."""
    name = gate.cell.name
    total = 0
    for p, net in enumerate(gate.fanin):
        if p == pin:
            continue
        if name.startswith(("AND", "NAND")):
            total += cc1[net]
        elif name.startswith(("OR", "NOR")):
            total += cc0[net]
        elif name in ("XOR2", "XNOR2", "XOR3"):
            total += min(cc0[net], cc1[net])
        elif name == "MUX2":
            # Propagating a data pin needs the select; the select needs a
            # difference between the data pins — approximate with min cost.
            total += min(cc0[net], cc1[net])
        else:  # AOI/OAI and the rest: conservative min-cost side values
            total += min(cc0[net], cc1[net])
    return total


def compute_testability(nl: Netlist) -> Testability:
    """SCOAP controllability/observability for every net of ``nl``."""
    n = nl.n_nets
    cc0 = np.full(n, INF, dtype=np.int64)
    cc1 = np.full(n, INF, dtype=np.int64)
    for net in nl.comb_inputs:
        cc0[net] = 1
        cc1[net] = 1
    for gid in nl.topo_order():
        g = nl.gates[gid]
        c0, c1 = _gate_controllability(g, cc0, cc1)
        cc0[g.out] = c0
        cc1[g.out] = c1

    co = np.full(n, INF, dtype=np.int64)
    for net in nl.observed_nets:
        co[net] = 0
    for gid in reversed(nl.topo_order()):
        g = nl.gates[gid]
        out_co = co[g.out]
        if out_co >= INF:
            continue
        for pin, net in enumerate(g.fanin):
            cost = out_co + _side_input_cost(g, pin, cc0, cc1) + 1
            if cost < co[net]:
                co[net] = min(cost, INF)
    return Testability(cc0=cc0, cc1=cc1, co=co)
