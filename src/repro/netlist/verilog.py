"""Structural-Verilog-subset reader and writer.

The dialect is the flat gate-level subset commercial flows exchange:
one module, ``input``/``output``/``wire`` declarations, and cell instances
with named port connections.  Flops are emitted as ``SDFF`` instances with
``.D(...)`` / ``.Q(...)`` ports.  Cell input pins are named ``A, B, C ...``
and the output pin ``Y``.

This is enough to round-trip every netlist this package produces and to
import externally supplied flat netlists of the same shape.
"""

from __future__ import annotations

import re
from typing import Dict, List, TextIO, Tuple

from .builder import NetlistBuilder
from .cells import CELL_LIBRARY
from .netlist import EXTERNAL_DRIVER, Netlist

__all__ = ["write_verilog", "read_verilog", "dumps", "loads"]

_PIN_NAMES = "ABCDEFGH"


def _escape(name: str) -> str:
    """Make a net/instance name a legal simple Verilog identifier."""
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


def dumps(nl: Netlist) -> str:
    """Serialize ``nl`` to a structural Verilog string."""
    lines: List[str] = []
    pis = [_escape(nl.nets[n].name) for n in nl.primary_inputs]
    pos = [_escape(nl.nets[n].name) for n in nl.primary_outputs]
    ports = ", ".join(pis + pos)
    lines.append(f"module {_escape(nl.name)} ({ports});")
    for p in pis:
        lines.append(f"  input {p};")
    for p in pos:
        lines.append(f"  output {p};")
    boundary = set(nl.primary_inputs) | set(nl.primary_outputs)
    for net in nl.nets:
        if net.id not in boundary:
            lines.append(f"  wire {_escape(net.name)};")
    for g in nl.gates:
        conns = [f".Y({_escape(nl.nets[g.out].name)})"]
        for pin, nid in enumerate(g.fanin):
            conns.append(f".{_PIN_NAMES[pin]}({_escape(nl.nets[nid].name)})")
        tier_attr = f" /* tier={g.tier} */" if g.tier >= 0 else ""
        lines.append(f"  {g.cell.name} {_escape(g.name)} ({', '.join(conns)});{tier_attr}")
    for f in nl.flops:
        d = _escape(nl.nets[f.d_net].name)
        q = _escape(nl.nets[f.q_net].name)
        tier_attr = f" /* tier={f.tier} */" if f.tier >= 0 else ""
        lines.append(f"  SDFF {_escape(f.name)} (.D({d}), .Q({q}));{tier_attr}")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog(nl: Netlist, fh: TextIO) -> None:
    """Write ``nl`` as structural Verilog to an open text file."""
    fh.write(dumps(nl))


_INSTANCE_RE = re.compile(
    r"^\s*(?P<cell>[A-Za-z0-9_]+)\s+(?P<inst>[A-Za-z0-9_]+)\s*\((?P<conns>[^;]*)\)\s*;"
    r"(?:\s*/\*\s*tier=(?P<tier>-?\d+)\s*\*/)?"
)
_CONN_RE = re.compile(r"\.\s*(?P<pin>[A-Za-z0-9_]+)\s*\(\s*(?P<net>[A-Za-z0-9_]+)\s*\)")
_DECL_RE = re.compile(r"^\s*(input|output|wire)\s+(.*?);\s*$")
_MODULE_RE = re.compile(r"^\s*module\s+([A-Za-z0-9_]+)")


def loads(text: str) -> Netlist:
    """Parse a structural Verilog string produced by :func:`dumps`.

    Raises:
        ValueError: on unknown cells, missing pins, or undeclared nets.
    """
    name = "top"
    inputs: List[str] = []
    outputs: List[str] = []
    wires: List[str] = []
    instances: List[Tuple[str, str, Dict[str, str], int]] = []

    for raw in text.splitlines():
        line = raw.split("//")[0].strip()
        if not line or line.startswith("endmodule"):
            continue
        m = _MODULE_RE.match(line)
        if m:
            name = m.group(1)
            continue
        m = _DECL_RE.match(line)
        if m:
            kind, rest = m.group(1), m.group(2)
            names = [n.strip() for n in rest.split(",") if n.strip()]
            {"input": inputs, "output": outputs, "wire": wires}[kind].extend(names)
            continue
        m = _INSTANCE_RE.match(line)
        if m:
            conns = {p: n for p, n in _CONN_RE.findall(m.group("conns"))}
            tier = int(m.group("tier")) if m.group("tier") is not None else -1
            instances.append((m.group("cell"), m.group("inst"), conns, tier))
            continue
        raise ValueError(f"unparseable line: {raw!r}")

    b = NetlistBuilder(name)
    net_ids: Dict[str, int] = {}
    for n in inputs:
        net_ids[n] = b.add_primary_input(n)

    flop_insts = [(c, i, conns, t) for c, i, conns, t in instances if c == "SDFF"]
    gate_insts = [(c, i, conns, t) for c, i, conns, t in instances if c != "SDFF"]

    # Q nets come from outside the combinational core: create them up front.
    for _cell, inst, conns, _tier in flop_insts:
        q = conns.get("Q")
        if q is None:
            raise ValueError(f"flop {inst} missing .Q")
        if q not in net_ids:
            net_ids[q] = b.add_net(q)

    # Gates can appear in any order; iterate until every fanin is resolvable.
    pending = list(gate_insts)
    while pending:
        progressed = False
        still: List[Tuple[str, str, Dict[str, str], int]] = []
        for cname, inst, conns, tier in pending:
            if cname not in CELL_LIBRARY:
                raise ValueError(f"unknown cell {cname!r} in instance {inst}")
            n_in = CELL_LIBRARY[cname].n_inputs
            pins = [_PIN_NAMES[i] for i in range(n_in)]
            try:
                fanin_names = [conns[p] for p in pins]
            except KeyError as exc:
                raise ValueError(f"instance {inst} missing pin {exc}") from None
            if any(fn not in net_ids for fn in fanin_names):
                still.append((cname, inst, conns, tier))
                continue
            out_name = conns.get("Y")
            if out_name is None:
                raise ValueError(f"instance {inst} missing .Y")
            out = b.add_gate(cname, [net_ids[fn] for fn in fanin_names],
                             out_name=out_name, gate_name=inst)
            b._gates[-1].tier = tier
            net_ids[out_name] = out
            progressed = True
        if not progressed and still:
            missing = sorted({fn for _c, _i, conns, _t in still for fn in conns.values()
                              if fn not in net_ids})
            raise ValueError(f"undriven nets: {missing[:5]}")
        pending = still

    for _cell, inst, conns, tier in flop_insts:
        d = conns.get("D")
        if d is None or d not in net_ids:
            raise ValueError(f"flop {inst} has missing or undriven .D")
        b.add_flop_with_q(d_net=net_ids[d], q_net=net_ids[conns["Q"]], name=inst)
        b._flops[-1].tier = tier
    for n in outputs:
        if n not in net_ids:
            raise ValueError(f"output {n!r} is undriven")
        b.mark_primary_output(net_ids[n])
    return b.finish()


def read_verilog(fh: TextIO) -> Netlist:
    """Parse structural Verilog from an open text file."""
    return loads(fh.read())
