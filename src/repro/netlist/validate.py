"""Structural design-rule checks for netlists (compatibility front-end).

The actual engine lives in :mod:`repro.analysis.drc`, which extends the
original checks of this module with rule ids, Tarjan-named combinational
loops, dead-logic reachability, positional-id assertions (replacing the old
no-op positional check), and tier/MIV/HetGraph rules.

``validate`` raises :class:`NetlistError` on violation; ``check`` returns
the full list of violation messages (each prefixed with its rule id) for
reporting.  Pass ``mivs``/``het`` to extend the scope beyond the bare
netlist; use :func:`repro.analysis.drc.run_drc` directly for structured
:class:`~repro.analysis.drc.DrcViolation` records.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from ..analysis.drc import NetlistError, run_drc

if TYPE_CHECKING:  # pragma: no cover
    from ..core.hetgraph import HetGraph
    from ..m3d.miv import MIV
    from .netlist import Netlist

__all__ = ["NetlistError", "validate", "check"]


def check(
    nl: "Netlist",
    mivs: Optional[Sequence["MIV"]] = None,
    het: Optional["HetGraph"] = None,
) -> List[str]:
    """Return human-readable messages for every structural violation."""
    return [str(v) for v in run_drc(nl, mivs=mivs, het=het)]


def validate(
    nl: "Netlist",
    mivs: Optional[Sequence["MIV"]] = None,
    het: Optional["HetGraph"] = None,
) -> None:
    """Raise :class:`NetlistError` when the netlist violates any structural rule."""
    problems = check(nl, mivs=mivs, het=het)
    if problems:
        raise NetlistError("; ".join(problems[:10]))
