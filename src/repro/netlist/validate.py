"""Structural design-rule checks for netlists.

``validate`` raises :class:`NetlistError` on the first violation;
``check`` returns the full list of violation messages for reporting.
"""

from __future__ import annotations

from typing import List

from .netlist import EXTERNAL_DRIVER, Netlist

__all__ = ["NetlistError", "validate", "check"]


class NetlistError(ValueError):
    """A structural violation found by :func:`validate`."""


def check(nl: Netlist) -> List[str]:
    """Return human-readable messages for every structural violation."""
    problems: List[str] = []
    external = set(nl.primary_inputs) | {f.q_net for f in nl.flops}

    for net in nl.nets:
        if net.id != nl.nets.index(net):
            pass  # ids are positional by construction; nothing to check cheaply
        if net.driver == EXTERNAL_DRIVER and net.id not in external:
            problems.append(f"net {net.name!r} ({net.id}) has no driver")
        if net.driver != EXTERNAL_DRIVER:
            g = nl.gates[net.driver]
            if g.out != net.id:
                problems.append(
                    f"net {net.name!r} claims driver gate {g.name!r} "
                    f"but that gate drives net {g.out}"
                )

    for g in nl.gates:
        if len(g.fanin) != g.cell.n_inputs:
            problems.append(
                f"gate {g.name!r} has {len(g.fanin)} fanins for cell {g.cell.name}"
            )
        for pin, nid in enumerate(g.fanin):
            if not 0 <= nid < nl.n_nets:
                problems.append(f"gate {g.name!r} pin {pin} references bad net {nid}")
            elif (g.id, pin) not in nl.nets[nid].sinks:
                problems.append(
                    f"sink list of net {nid} is missing gate {g.name!r} pin {pin}"
                )

    observed = set(nl.observed_nets)
    for g in nl.gates:
        net = nl.nets[g.out]
        if not net.sinks and net.id not in observed:
            problems.append(f"gate {g.name!r} output net {net.name!r} dangles")

    for f in nl.flops:
        if not 0 <= f.d_net < nl.n_nets or not 0 <= f.q_net < nl.n_nets:
            problems.append(f"flop {f.name!r} references bad nets")

    try:
        nl.topo_order()
    except ValueError as exc:
        problems.append(str(exc))
    return problems


def validate(nl: Netlist) -> None:
    """Raise :class:`NetlistError` when the netlist violates any structural rule."""
    problems = check(nl)
    if problems:
        raise NetlistError("; ".join(problems[:10]))
