"""Structural statistics reports for netlists.

Profiles the generated benchmarks against the structural quantities that
matter for diagnosis quality — gate mix, fan-out skew, logic-depth
histogram, reconvergence — and renders a text report.  Useful both for
sanity-checking the synthetic generators against their intended "flavor"
and for characterizing imported designs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .netlist import EXTERNAL_DRIVER, Netlist

__all__ = ["NetlistProfile", "profile_netlist", "format_profile"]


@dataclass
class NetlistProfile:
    """Structural profile of one design.

    Attributes:
        gate_mix: Cell name → fraction of gates.
        fanout_histogram: Fan-out value → net count.
        mean_fanout / max_fanout: Net fan-out statistics.
        depth: Maximum topological level.
        mean_depth: Mean level of observed nets.
        reconvergence: Fraction of gates with at least two input paths from
            a common ancestor net (sampled estimate).
        n_gates / n_nets / n_flops: Sizes.
    """

    gate_mix: Dict[str, float]
    fanout_histogram: Dict[int, int]
    mean_fanout: float
    max_fanout: int
    depth: int
    mean_depth: float
    reconvergence: float
    n_gates: int
    n_nets: int
    n_flops: int


def _reconvergence_fraction(nl: Netlist, sample: int = 200, seed: int = 0) -> float:
    """Sampled fraction of multi-input gates whose input cones intersect."""
    from .topology import fanin_cone_nets

    rng = np.random.default_rng(seed)
    multi = [g for g in nl.gates if len(g.fanin) >= 2]
    if not multi:
        return 0.0
    picks = rng.choice(len(multi), size=min(sample, len(multi)), replace=False)
    hits = 0
    for i in picks:
        g = multi[int(i)]
        cones = [fanin_cone_nets(nl, n) - {n} for n in g.fanin[:2]]
        if cones[0] & cones[1]:
            hits += 1
    return hits / len(picks)


def profile_netlist(nl: Netlist) -> NetlistProfile:
    """Compute the structural profile of ``nl``."""
    mix = Counter(g.cell.name for g in nl.gates)
    total = max(nl.n_gates, 1)
    fanouts = [len(n.sinks) for n in nl.nets]
    levels = nl.net_levels()
    observed = nl.observed_nets
    return NetlistProfile(
        gate_mix={name: c / total for name, c in sorted(mix.items())},
        fanout_histogram=dict(sorted(Counter(fanouts).items())),
        mean_fanout=float(np.mean(fanouts)) if fanouts else 0.0,
        max_fanout=max(fanouts) if fanouts else 0,
        depth=max(levels) if levels else 0,
        mean_depth=float(np.mean([levels[n] for n in observed])) if observed else 0.0,
        reconvergence=_reconvergence_fraction(nl),
        n_gates=nl.n_gates,
        n_nets=nl.n_nets,
        n_flops=nl.n_flops,
    )


def format_profile(profile: NetlistProfile, name: str = "design") -> str:
    """Render a profile as a text report."""
    lines = [
        f"structural profile: {name}",
        f"  gates={profile.n_gates} nets={profile.n_nets} flops={profile.n_flops}",
        f"  depth={profile.depth} (mean observed depth {profile.mean_depth:.1f})",
        f"  fanout: mean={profile.mean_fanout:.2f} max={profile.max_fanout}",
        f"  reconvergent gates: {profile.reconvergence:.1%}",
        "  gate mix:",
    ]
    for cell, frac in sorted(profile.gate_mix.items(), key=lambda kv: -kv[1]):
        lines.append(f"    {cell:8s} {frac:6.1%}")
    return "\n".join(lines)
