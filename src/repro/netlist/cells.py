"""Standard-cell library for the reproduction.

The library is a small combinational subset of a typical 45 nm standard-cell
library (Nangate-style names).  Each :class:`CellType` carries a vectorized
evaluation function that operates on uint8 numpy arrays holding one logic
value (0/1) per test pattern, so the whole simulator is bit-parallel across
patterns.

Sequential elements (scan flops) are *not* cells: the full-scan abstraction
in :mod:`repro.netlist.netlist` models flops as pseudo-input/pseudo-output
boundary objects of the combinational core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

__all__ = ["CellType", "CELL_LIBRARY", "cell", "cell_names", "INVERTING_CELLS"]

EvalFn = Callable[[Sequence[np.ndarray]], np.ndarray]


@dataclass(frozen=True)
class CellType:
    """A combinational standard cell.

    Attributes:
        name: Library name, e.g. ``"NAND2"``.
        n_inputs: Number of input pins.
        func: Vectorized boolean function over uint8 arrays (one entry per
            pattern).  Inputs are guaranteed to contain only 0/1.
        area: Relative cell area (arbitrary units) used by the partitioners
            for area balancing.
        symmetric: True when all input pins are interchangeable; used by the
            re-synthesis transform to permute pins without changing function.
    """

    name: str
    n_inputs: int
    func: EvalFn = field(repr=False)
    area: float = 1.0
    symmetric: bool = True

    def evaluate(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Evaluate the cell on pattern-parallel input arrays."""
        if len(inputs) != self.n_inputs:
            raise ValueError(
                f"{self.name} expects {self.n_inputs} inputs, got {len(inputs)}"
            )
        return self.func(inputs).astype(np.uint8)


def _and(ins: Sequence[np.ndarray]) -> np.ndarray:
    out = ins[0].copy()
    for x in ins[1:]:
        out &= x
    return out


def _or(ins: Sequence[np.ndarray]) -> np.ndarray:
    out = ins[0].copy()
    for x in ins[1:]:
        out |= x
    return out


def _xor(ins: Sequence[np.ndarray]) -> np.ndarray:
    out = ins[0].copy()
    for x in ins[1:]:
        out ^= x
    return out


def _not(x: np.ndarray) -> np.ndarray:
    return x ^ 1


def _mux2(ins: Sequence[np.ndarray]) -> np.ndarray:
    # ins = (a, b, sel): out = a when sel=0 else b
    a, b, sel = ins
    return (a & _not(sel)) | (b & sel)


def _aoi21(ins: Sequence[np.ndarray]) -> np.ndarray:
    # out = NOT((a AND b) OR c)
    a, b, c = ins
    return _not((a & b) | c)


def _oai21(ins: Sequence[np.ndarray]) -> np.ndarray:
    # out = NOT((a OR b) AND c)
    a, b, c = ins
    return _not((a | b) & c)


def _make_library() -> Dict[str, CellType]:
    lib: Dict[str, CellType] = {}

    def add(name: str, n: int, fn: EvalFn, area: float, symmetric: bool = True) -> None:
        lib[name] = CellType(name=name, n_inputs=n, func=fn, area=area, symmetric=symmetric)

    add("BUF", 1, lambda ins: ins[0].copy(), 0.8)
    add("INV", 1, lambda ins: _not(ins[0]), 0.5)
    for n in (2, 3, 4):
        add(f"AND{n}", n, _and, 0.9 + 0.3 * n)
        add(f"OR{n}", n, _or, 0.9 + 0.3 * n)
        add(f"NAND{n}", n, lambda ins: _not(_and(ins)), 0.7 + 0.3 * n)
        add(f"NOR{n}", n, lambda ins: _not(_or(ins)), 0.7 + 0.3 * n)
    add("XOR2", 2, _xor, 2.0)
    add("XNOR2", 2, lambda ins: _not(_xor(ins)), 2.1)
    add("XOR3", 3, _xor, 3.0)
    add("MUX2", 3, _mux2, 2.2, symmetric=False)
    add("AOI21", 3, _aoi21, 1.6, symmetric=False)
    add("OAI21", 3, _oai21, 1.6, symmetric=False)
    return lib


#: The global cell library keyed by cell name.
CELL_LIBRARY: Dict[str, CellType] = _make_library()

#: Cells whose output inverts a single-input change on every path; used by the
#: re-synthesis transform when pairing inverters.
INVERTING_CELLS: Tuple[str, ...] = ("INV", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4", "XNOR2")


def cell(name: str) -> CellType:
    """Look up a cell type by name.

    Raises:
        KeyError: if the cell is not in the library.
    """
    try:
        return CELL_LIBRARY[name]
    except KeyError:
        raise KeyError(f"unknown cell type {name!r}; known: {sorted(CELL_LIBRARY)}") from None


def cell_names() -> Tuple[str, ...]:
    """All cell names in the library, sorted."""
    return tuple(sorted(CELL_LIBRARY))
