"""Standard-cell library for the reproduction.

The library is a small combinational subset of a typical 45 nm standard-cell
library (Nangate-style names).  Each :class:`CellType` carries a vectorized
evaluation function that operates on uint8 numpy arrays holding one logic
value (0/1) per test pattern, so the whole simulator is bit-parallel across
patterns.

Sequential elements (scan flops) are *not* cells: the full-scan abstraction
in :mod:`repro.netlist.netlist` models flops as pseudo-input/pseudo-output
boundary objects of the combinational core.

Each cell additionally carries (or derives) a *packed* evaluation function
for the bit-packed engine, operating on ``uint64`` words that hold 64
patterns each.  AND/OR/XOR/NOT are native bitwise word operations; any cell
without a hand-written packed kernel gets one derived from its truth table
as a sum of minterms (library cells have at most 4 inputs, so at most 16
minterms).
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CellType",
    "CELL_LIBRARY",
    "cell",
    "cell_names",
    "packed_eval",
    "PackedFn",
    "INVERTING_CELLS",
]

EvalFn = Callable[[Sequence[np.ndarray]], np.ndarray]


@dataclass(frozen=True)
class CellType:
    """A combinational standard cell.

    Attributes:
        name: Library name, e.g. ``"NAND2"``.
        n_inputs: Number of input pins.
        func: Vectorized boolean function over uint8 arrays (one entry per
            pattern).  Inputs are guaranteed to contain only 0/1.
        area: Relative cell area (arbitrary units) used by the partitioners
            for area balancing.
        symmetric: True when all input pins are interchangeable; used by the
            re-synthesis transform to permute pins without changing function.
        packed_func: Optional word-parallel evaluation ``fn(ins, full)`` over
            packed words (uint64 arrays or Python big-ints; ``full`` is the
            all-ones mask, so NOT is ``full ^ x``).  When absent,
            :func:`packed_eval` derives one from the truth table.
    """

    name: str
    n_inputs: int
    func: EvalFn = field(repr=False)
    area: float = 1.0
    symmetric: bool = True
    packed_func: Optional["PackedFn"] = field(default=None, repr=False, compare=False)

    def evaluate(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Evaluate the cell on pattern-parallel input arrays."""
        if len(inputs) != self.n_inputs:
            raise ValueError(
                f"{self.name} expects {self.n_inputs} inputs, got {len(inputs)}"
            )
        return self.func(inputs).astype(np.uint8)

    def __reduce_ex__(self, protocol):
        # Library cells pickle by name so the unpickled instance *is* the
        # CELL_LIBRARY singleton — identity matters: `packed_expr` only
        # inlines a cell when `ct is CELL_LIBRARY[ct.name]`, and several
        # library eval functions are lambdas that cannot pickle by value.
        # Custom cells fall through to the default protocol and pickle only
        # if their eval functions do.
        if CELL_LIBRARY.get(self.name) is self:
            return (cell, (self.name,))
        return super().__reduce_ex__(protocol)


def _and(ins: Sequence[np.ndarray]) -> np.ndarray:
    out = ins[0].copy()
    for x in ins[1:]:
        out &= x
    return out


def _or(ins: Sequence[np.ndarray]) -> np.ndarray:
    out = ins[0].copy()
    for x in ins[1:]:
        out |= x
    return out


def _xor(ins: Sequence[np.ndarray]) -> np.ndarray:
    out = ins[0].copy()
    for x in ins[1:]:
        out ^= x
    return out


def _not(x: np.ndarray) -> np.ndarray:
    return x ^ 1


def _mux2(ins: Sequence[np.ndarray]) -> np.ndarray:
    # ins = (a, b, sel): out = a when sel=0 else b
    a, b, sel = ins
    return (a & _not(sel)) | (b & sel)


def _aoi21(ins: Sequence[np.ndarray]) -> np.ndarray:
    # out = NOT((a AND b) OR c)
    a, b, c = ins
    return _not((a & b) | c)


def _oai21(ins: Sequence[np.ndarray]) -> np.ndarray:
    # out = NOT((a OR b) AND c)
    a, b, c = ins
    return _not((a | b) & c)


# ---------------------------------------------------------------- packed ops
# Word-parallel kernels.  A packed kernel has signature ``fn(ins, full)``
# where ``ins`` are packed words and ``full`` is the all-ones mask of the
# word type.  NOT is realized as ``full ^ x`` (never ``^ 1``, which would
# flip only the lowest bit lane), which makes every kernel *algebra
# generic*: it runs unchanged on uint64 numpy arrays (64 patterns per word,
# ``full = np.uint64(2**64 - 1)``) and on arbitrary-precision Python ints
# (all patterns in one machine word, ``full = 2**(64*n_words) - 1``) — the
# latter is what the per-fault cone re-simulation uses, since big-int
# bitwise ops dodge numpy's per-call dispatch overhead on tiny arrays.

PackedFn = Callable[[Sequence, object], object]


def _pand(ins: Sequence, full) -> object:
    out = ins[0]
    for x in ins[1:]:
        out = out & x
    return out


def _por(ins: Sequence, full) -> object:
    out = ins[0]
    for x in ins[1:]:
        out = out | x
    return out


def _pxor(ins: Sequence, full) -> object:
    out = ins[0]
    for x in ins[1:]:
        out = out ^ x
    return out


def _pbuf(ins: Sequence, full) -> object:
    return ins[0] & full


def _pinv(ins: Sequence, full) -> object:
    return full ^ ins[0]


def _pnand(ins: Sequence, full) -> object:
    return full ^ _pand(ins, full)


def _pnor(ins: Sequence, full) -> object:
    return full ^ _por(ins, full)


def _pxnor(ins: Sequence, full) -> object:
    return full ^ _pxor(ins, full)


def _pmux2(ins: Sequence, full) -> object:
    a, b, sel = ins
    return (a & (full ^ sel)) | (b & sel)


def _paoi21(ins: Sequence, full) -> object:
    a, b, c = ins
    return full ^ ((a & b) | c)


def _poai21(ins: Sequence, full) -> object:
    a, b, c = ins
    return full ^ ((a | b) & c)


def _truth_table_packed(fn: EvalFn, n_inputs: int) -> PackedFn:
    """Derive a packed kernel from a cell's scalar truth table.

    Evaluates ``fn`` on all 2^n input combinations once and emits the sum of
    minterms over word-parallel literals; exact for any cell the uint8 path
    can express.
    """
    minterms = []
    for bits in itertools.product((0, 1), repeat=n_inputs):
        probe = [np.array([b], dtype=np.uint8) for b in bits]
        if int(np.asarray(fn(probe)).ravel()[0]) & 1:
            minterms.append(bits)

    def packed(ins: Sequence, full) -> object:
        out = ins[0] ^ ins[0]
        if len(minterms) == 2 ** n_inputs:
            return out ^ full
        for bits in minterms:
            term = ins[0] if bits[0] else (full ^ ins[0])
            for b, x in zip(bits[1:], ins[1:]):
                term = term & (x if b else (full ^ x))
            out = out | term
        return out

    return packed


@functools.lru_cache(maxsize=None)
def packed_eval(ct: CellType) -> PackedFn:
    """The word-parallel evaluation function of a cell (derived if needed)."""
    if ct.packed_func is not None:
        return ct.packed_func
    return _truth_table_packed(ct.func, ct.n_inputs)


#: Source templates of the packed kernels, used by the cone code generator
#: to inline a cell into a straight-line expression.  ``{0}``/``{1}``/…
#: substitute the packed input operands; ``full`` is the all-ones mask in
#: scope at the generated call site.  Cells absent here (custom cells) fall
#: back to a kernel call through :func:`packed_eval`.
_PACKED_EXPRS: Dict[str, str] = {
    "BUF": "({0})",
    "INV": "(full^{0})",
    "XOR2": "({0}^{1})",
    "XOR3": "({0}^{1}^{2})",
    "XNOR2": "(full^({0}^{1}))",
    "MUX2": "(({0}&(full^{2}))|({1}&{2}))",
    "AOI21": "(full^(({0}&{1})|{2}))",
    "OAI21": "(full^(({0}|{1})&{2}))",
}
for _n in (2, 3, 4):
    _ops = "&".join("{%d}" % _i for _i in range(_n))
    _orv = "|".join("{%d}" % _i for _i in range(_n))
    _PACKED_EXPRS[f"AND{_n}"] = f"({_ops})"
    _PACKED_EXPRS[f"OR{_n}"] = f"({_orv})"
    _PACKED_EXPRS[f"NAND{_n}"] = f"(full^({_ops}))"
    _PACKED_EXPRS[f"NOR{_n}"] = f"(full^({_orv}))"


def packed_expr(ct: CellType, args: Sequence[str]) -> Optional[str]:
    """Inline source expression of a cell over packed operands, or None.

    Only cells whose :attr:`CellType.packed_func` is the library kernel the
    template mirrors are inlined; a custom cell reusing a library name gets
    ``None`` so the code generator calls its actual kernel.
    """
    template = _PACKED_EXPRS.get(ct.name)
    if template is None or ct is not CELL_LIBRARY.get(ct.name):
        return None
    return template.format(*args)


def _make_library() -> Dict[str, CellType]:
    lib: Dict[str, CellType] = {}

    def add(
        name: str,
        n: int,
        fn: EvalFn,
        area: float,
        symmetric: bool = True,
        packed: Optional[EvalFn] = None,
    ) -> None:
        lib[name] = CellType(
            name=name, n_inputs=n, func=fn, area=area, symmetric=symmetric, packed_func=packed
        )

    add("BUF", 1, lambda ins: ins[0].copy(), 0.8, packed=_pbuf)
    add("INV", 1, lambda ins: _not(ins[0]), 0.5, packed=_pinv)
    for n in (2, 3, 4):
        add(f"AND{n}", n, _and, 0.9 + 0.3 * n, packed=_pand)
        add(f"OR{n}", n, _or, 0.9 + 0.3 * n, packed=_por)
        add(f"NAND{n}", n, lambda ins: _not(_and(ins)), 0.7 + 0.3 * n, packed=_pnand)
        add(f"NOR{n}", n, lambda ins: _not(_or(ins)), 0.7 + 0.3 * n, packed=_pnor)
    add("XOR2", 2, _xor, 2.0, packed=_pxor)
    add("XNOR2", 2, lambda ins: _not(_xor(ins)), 2.1, packed=_pxnor)
    add("XOR3", 3, _xor, 3.0, packed=_pxor)
    add("MUX2", 3, _mux2, 2.2, symmetric=False, packed=_pmux2)
    add("AOI21", 3, _aoi21, 1.6, symmetric=False, packed=_paoi21)
    add("OAI21", 3, _oai21, 1.6, symmetric=False, packed=_poai21)
    return lib


#: The global cell library keyed by cell name.
CELL_LIBRARY: Dict[str, CellType] = _make_library()

#: Cells whose output inverts a single-input change on every path; used by the
#: re-synthesis transform when pairing inverters.
INVERTING_CELLS: Tuple[str, ...] = ("INV", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4", "XNOR2")


def cell(name: str) -> CellType:
    """Look up a cell type by name.

    Raises:
        KeyError: if the cell is not in the library.
    """
    try:
        return CELL_LIBRARY[name]
    except KeyError:
        raise KeyError(f"unknown cell type {name!r}; known: {sorted(CELL_LIBRARY)}") from None


def cell_names() -> Tuple[str, ...]:
    """All cell names in the library, sorted."""
    return tuple(sorted(CELL_LIBRARY))
