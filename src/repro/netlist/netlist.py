"""Core gate-level netlist data structures.

A :class:`Netlist` models a full-scan sequential design as its combinational
core plus a set of scan flops at the boundary:

* *Primary inputs* (PIs) and flop outputs (Q pins, pseudo-primary inputs)
  drive the combinational core.
* *Primary outputs* (POs) and flop data inputs (D pins, pseudo-primary
  outputs) observe it.

Every net has exactly one driver (a gate output, a PI, or a flop Q pin) and
zero or more sinks (gate input pins, a PO, or a flop D pin).  Gates and nets
are referenced by dense integer ids so the simulator can compile the netlist
into flat numpy-friendly tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .cells import CellType

__all__ = ["Gate", "Net", "Flop", "Netlist", "PinRef"]

#: A (gate_id, pin_index) reference to a gate input pin.
PinRef = Tuple[int, int]

#: Driver id used by nets driven from outside the combinational core.
EXTERNAL_DRIVER = -1


@dataclass
class Gate:
    """A combinational gate instance.

    Attributes:
        id: Dense index into ``Netlist.gates``.
        name: Instance name, unique within the netlist.
        cell: The cell type from :data:`repro.netlist.cells.CELL_LIBRARY`.
        fanin: Net ids feeding each input pin, ordered by pin index.
        out: Net id driven by the gate output.
        tier: M3D tier assignment (0 = bottom, 1 = top, ... ; -1 = unassigned).
    """

    id: int
    name: str
    cell: CellType
    fanin: List[int]
    out: int
    tier: int = -1


@dataclass
class Net:
    """A single-driver net.

    Attributes:
        id: Dense index into ``Netlist.nets``.
        name: Net name, unique within the netlist.
        driver: Gate id of the driver, or ``EXTERNAL_DRIVER`` when the net is
            a PI or a flop Q output.
        sinks: Gate input pins fed by this net, as (gate_id, pin_index).
    """

    id: int
    name: str
    driver: int = EXTERNAL_DRIVER
    sinks: List[PinRef] = field(default_factory=list)


@dataclass
class Flop:
    """A scan flip-flop at the combinational-core boundary.

    Attributes:
        id: Dense index into ``Netlist.flops``.
        name: Instance name.
        d_net: Net observed by the flop (pseudo-primary output).
        q_net: Net driven by the flop (pseudo-primary input).
        tier: M3D tier assignment (-1 = unassigned).
    """

    id: int
    name: str
    d_net: int
    q_net: int
    tier: int = -1


class Netlist:
    """A full-scan gate-level design.

    Instances are normally produced by :class:`repro.netlist.builder.NetlistBuilder`
    or by the generators in :mod:`repro.netlist.generators`.
    """

    def __init__(
        self,
        name: str,
        gates: List[Gate],
        nets: List[Net],
        primary_inputs: List[int],
        primary_outputs: List[int],
        flops: List[Flop],
    ) -> None:
        self.name = name
        self.gates = gates
        self.nets = nets
        self.primary_inputs = primary_inputs
        self.primary_outputs = primary_outputs
        self.flops = flops
        self._topo_cache: Optional[List[int]] = None
        self._topo_pos_cache: Optional[List[int]] = None

    # ------------------------------------------------------------------ size
    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def n_nets(self) -> int:
        return len(self.nets)

    @property
    def n_flops(self) -> int:
        return len(self.flops)

    # --------------------------------------------------------------- boundary
    @property
    def comb_inputs(self) -> List[int]:
        """Net ids driven from outside the core: PIs followed by flop Q nets."""
        return list(self.primary_inputs) + [f.q_net for f in self.flops]

    @property
    def observed_nets(self) -> List[int]:
        """Net ids observed by the tester: POs followed by flop D nets."""
        return list(self.primary_outputs) + [f.d_net for f in self.flops]

    def flop_of_d_net(self, net_id: int) -> Optional[Flop]:
        """The flop observing ``net_id`` through its D pin, if any."""
        for f in self.flops:
            if f.d_net == net_id:
                return f
        return None

    # ------------------------------------------------------------- structure
    def invalidate(self) -> None:
        """Drop cached derived data after a structural mutation."""
        self._topo_cache = None
        self._topo_pos_cache = None

    def topo_order(self) -> List[int]:
        """Gate ids in topological (fanin-before-fanout) order.

        Raises:
            ValueError: if the combinational core contains a cycle.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        indeg = [0] * self.n_gates
        for g in self.gates:
            for net_id in g.fanin:
                drv = self.nets[net_id].driver
                if drv != EXTERNAL_DRIVER:
                    indeg[g.id] += 1
        ready = [g.id for g in self.gates if indeg[g.id] == 0]
        order: List[int] = []
        head = 0
        while head < len(ready):
            gid = ready[head]
            head += 1
            order.append(gid)
            for sink_gate, _pin in self.nets[self.gates[gid].out].sinks:
                indeg[sink_gate] -= 1
                if indeg[sink_gate] == 0:
                    ready.append(sink_gate)
        if len(order) != self.n_gates:
            raise ValueError(
                f"combinational loop detected: ordered {len(order)} of {self.n_gates} gates"
            )
        self._topo_cache = order
        return order

    def topo_position(self) -> List[int]:
        """``pos[gate_id]`` = the gate's index in :meth:`topo_order`.

        Cached alongside the topological order (and dropped by
        :meth:`invalidate`), so ordering a gate *subset* — e.g. a fault's
        fan-out cone — costs O(|subset| log |subset|) instead of a scan over
        every gate in the design.
        """
        if self._topo_pos_cache is None:
            pos = [0] * self.n_gates
            for i, gid in enumerate(self.topo_order()):
                pos[gid] = i
            self._topo_pos_cache = pos
        return self._topo_pos_cache

    def net_levels(self) -> List[int]:
        """Topological level of every net (inputs at level 0)."""
        levels = [0] * self.n_nets
        for gid in self.topo_order():
            g = self.gates[gid]
            lvl = 0
            for net_id in g.fanin:
                lvl = max(lvl, levels[net_id] + 1)
            levels[g.out] = lvl
        return levels

    def gate_tiers(self) -> List[int]:
        return [g.tier for g in self.gates]

    def net_tier(self, net_id: int) -> int:
        """Tier of a net's driver (-1 for unpartitioned or PI-driven nets)."""
        drv = self.nets[net_id].driver
        if drv == EXTERNAL_DRIVER:
            for f in self.flops:
                if f.q_net == net_id:
                    return f.tier
            return 0  # PIs live on the bottom tier by convention
        return self.gates[drv].tier

    # ------------------------------------------------------------------ misc
    def stats(self) -> Dict[str, float]:
        """Summary statistics used by the design-matrix experiment."""
        levels = self.net_levels() if self.gates else [0]
        return {
            "gates": self.n_gates,
            "nets": self.n_nets,
            "flops": self.n_flops,
            "primary_inputs": len(self.primary_inputs),
            "primary_outputs": len(self.primary_outputs),
            "depth": max(levels) if levels else 0,
            "area": sum(g.cell.area for g in self.gates),
        }

    def copy(self) -> "Netlist":
        """Deep copy (cell types are shared; they are immutable)."""
        gates = [Gate(g.id, g.name, g.cell, list(g.fanin), g.out, g.tier) for g in self.gates]
        nets = [Net(n.id, n.name, n.driver, list(n.sinks)) for n in self.nets]
        flops = [Flop(f.id, f.name, f.d_net, f.q_net, f.tier) for f in self.flops]
        return Netlist(
            self.name,
            gates,
            nets,
            list(self.primary_inputs),
            list(self.primary_outputs),
            flops,
        )

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, gates={self.n_gates}, nets={self.n_nets}, "
            f"flops={self.n_flops}, pis={len(self.primary_inputs)}, "
            f"pos={len(self.primary_outputs)})"
        )
