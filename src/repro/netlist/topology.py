"""Topological analysis helpers: cones, levels, BFS distances.

These run on the net/gate graph of a :class:`~repro.netlist.netlist.Netlist`.
The circuit graph is viewed with *nets as vertices*: net ``u`` precedes net
``v`` when ``u`` feeds an input pin of the gate driving ``v``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .netlist import EXTERNAL_DRIVER, Netlist

__all__ = [
    "fanin_nets",
    "fanin_cone_nets",
    "fanout_cone_gates",
    "sort_gates_topologically",
    "bfs_distance_from_observation",
    "reachable_observations",
]


def fanin_nets(nl: Netlist, net_id: int) -> List[int]:
    """Immediate predecessor nets of ``net_id`` (its driver gate's fanin)."""
    drv = nl.nets[net_id].driver
    if drv == EXTERNAL_DRIVER:
        return []
    return list(nl.gates[drv].fanin)


def fanin_cone_nets(nl: Netlist, net_id: int) -> Set[int]:
    """All nets in the transitive fan-in cone of ``net_id`` (inclusive)."""
    seen: Set[int] = {net_id}
    stack = [net_id]
    while stack:
        cur = stack.pop()
        for pred in fanin_nets(nl, cur):
            if pred not in seen:
                seen.add(pred)
                stack.append(pred)
    return seen


def fanout_cone_gates(nl: Netlist, start_gates: Iterable[int]) -> List[int]:
    """Gates in the transitive fan-out of ``start_gates``, topologically sorted.

    Used by the fault simulator to re-evaluate only the region a fault can
    influence.  The start gates themselves are included.
    """
    seen: Set[int] = set()
    stack = list(start_gates)
    while stack:
        gid = stack.pop()
        if gid in seen:
            continue
        seen.add(gid)
        for sink_gate, _pin in nl.nets[nl.gates[gid].out].sinks:
            if sink_gate not in seen:
                stack.append(sink_gate)
    return sort_gates_topologically(nl, seen)


def sort_gates_topologically(nl: Netlist, gate_ids: Iterable[int]) -> List[int]:
    """Order a gate subset by the netlist's global topological order.

    Uses the cached gate→position array (:meth:`Netlist.topo_position`), so
    the cost is O(|subset| log |subset|) — the old implementation scanned the
    full topological order on every call, which made per-fault cone
    extraction quadratic over a whole fault list.
    """
    pos = nl.topo_position()
    return sorted(gate_ids, key=pos.__getitem__)


def bfs_distance_from_observation(
    nl: Netlist, obs_net: int, miv_nets: Set[int] = frozenset()
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Backward BFS from an observation net over the net graph.

    Returns ``(dist, mivs)`` where ``dist[n]`` is the number of net hops on a
    shortest path from net ``n`` forward to ``obs_net`` and ``mivs[n]`` is the
    minimum number of MIV-bearing nets traversed along any such shortest path
    (``miv_nets`` is the set of nets that cross tiers).  These two maps are
    exactly the Topedge features of Table I (``D_top`` and ``N_MIV``).
    """
    dist: Dict[int, int] = {obs_net: 0}
    mivs: Dict[int, int] = {obs_net: 1 if obs_net in miv_nets else 0}
    queue = deque([obs_net])
    while queue:
        cur = queue.popleft()
        for pred in fanin_nets(nl, cur):
            nd = dist[cur] + 1
            nm = mivs[cur] + (1 if pred in miv_nets else 0)
            if pred not in dist:
                dist[pred] = nd
                mivs[pred] = nm
                queue.append(pred)
            elif dist[pred] == nd and nm < mivs[pred]:
                # Same shortest length, fewer MIVs: keep the minimum and let
                # it flow to predecessors still in the queue frontier.
                mivs[pred] = nm
    return dist, mivs


def reachable_observations(nl: Netlist, net_id: int) -> List[int]:
    """Observed nets (POs / flop D nets) reachable from ``net_id``."""
    observed = set(nl.observed_nets)
    found: Set[int] = set()
    seen: Set[int] = {net_id}
    stack = [net_id]
    while stack:
        cur = stack.pop()
        if cur in observed:
            found.add(cur)
        for sink_gate, _pin in nl.nets[cur].sinks:
            out = nl.gates[sink_gate].out
            if out not in seen:
                seen.add(out)
                stack.append(out)
    return sorted(found)
