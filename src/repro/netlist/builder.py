"""Incremental netlist construction.

:class:`NetlistBuilder` is the only supported way to create or structurally
edit a :class:`~repro.netlist.netlist.Netlist`.  It keeps name/id maps
consistent, assigns dense ids, and re-derives sink lists when finishing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .cells import CellType, cell
from .netlist import EXTERNAL_DRIVER, Flop, Gate, Net, Netlist

__all__ = ["NetlistBuilder"]


class NetlistBuilder:
    """Builds a :class:`Netlist` net by net and gate by gate.

    Example:
        >>> b = NetlistBuilder("demo")
        >>> a = b.add_primary_input("a")
        >>> bb = b.add_primary_input("b")
        >>> y = b.add_gate("NAND2", [a, bb], out_name="y")
        >>> b.mark_primary_output(y)
        >>> nl = b.finish()
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._gates: List[Gate] = []
        self._nets: List[Net] = []
        self._net_by_name: Dict[str, int] = {}
        self._gate_by_name: Dict[str, int] = {}
        self._pis: List[int] = []
        self._pos: List[int] = []
        self._flops: List[Flop] = []

    # ------------------------------------------------------------------ nets
    def add_net(self, name: str) -> int:
        """Create a new undriven net and return its id."""
        if name in self._net_by_name:
            raise ValueError(f"duplicate net name {name!r}")
        net = Net(id=len(self._nets), name=name)
        self._nets.append(net)
        self._net_by_name[name] = net.id
        return net.id

    def net_id(self, name: str) -> int:
        """Id of an existing net by name."""
        return self._net_by_name[name]

    def add_primary_input(self, name: str) -> int:
        nid = self.add_net(name)
        self._pis.append(nid)
        return nid

    def mark_primary_output(self, net_id: int) -> None:
        if net_id in self._pos:
            raise ValueError(f"net {net_id} already marked as primary output")
        self._pos.append(net_id)

    # ----------------------------------------------------------------- gates
    def add_gate(
        self,
        cell_name: str,
        fanin: Sequence[int],
        out_name: Optional[str] = None,
        gate_name: Optional[str] = None,
    ) -> int:
        """Add a gate; returns the id of its (freshly created) output net."""
        ct: CellType = cell(cell_name)
        if len(fanin) != ct.n_inputs:
            raise ValueError(
                f"{cell_name} needs {ct.n_inputs} inputs, got {len(fanin)}"
            )
        for nid in fanin:
            if not 0 <= nid < len(self._nets):
                raise ValueError(f"fanin net id {nid} does not exist")
        gid = len(self._gates)
        gname = gate_name or f"g{gid}"
        if gname in self._gate_by_name:
            raise ValueError(f"duplicate gate name {gname!r}")
        out = self.add_net(out_name or f"n_{gname}")
        g = Gate(id=gid, name=gname, cell=ct, fanin=list(fanin), out=out)
        self._nets[out].driver = gid
        self._gates.append(g)
        self._gate_by_name[gname] = gid
        return out

    def add_flop(self, d_net: int, name: Optional[str] = None, q_name: Optional[str] = None) -> int:
        """Add a scan flop observing ``d_net``; returns its Q net id."""
        fid = len(self._flops)
        fname = name or f"ff{fid}"
        q_net = self.add_net(q_name or f"q_{fname}")
        self._flops.append(Flop(id=fid, name=fname, d_net=d_net, q_net=q_net))
        return q_net

    def add_flop_with_q(self, d_net: int, q_net: int, name: Optional[str] = None) -> None:
        """Bind an existing (pre-created, undriven) net as a flop's Q output.

        Generators create Q nets up front so the combinational core can
        consume flop state before the D nets exist.
        """
        fid = len(self._flops)
        self._flops.append(Flop(id=fid, name=name or f"ff{fid}", d_net=d_net, q_net=q_net))

    # ---------------------------------------------------------------- finish
    def finish(self) -> Netlist:
        """Derive sink lists, check single-driver discipline, and return the netlist."""
        for net in self._nets:
            net.sinks = []
        for g in self._gates:
            for pin, nid in enumerate(g.fanin):
                self._nets[nid].sinks.append((g.id, pin))
        external = set(self._pis) | {f.q_net for f in self._flops}
        for net in self._nets:
            if net.driver == EXTERNAL_DRIVER and net.id not in external:
                raise ValueError(f"net {net.name!r} has no driver")
        nl = Netlist(
            self.name,
            self._gates,
            self._nets,
            list(self._pis),
            list(self._pos),
            self._flops,
        )
        nl.topo_order()  # fail fast on combinational loops
        return nl

    # -------------------------------------------------------------- editing
    @classmethod
    def from_netlist(cls, nl: Netlist) -> "NetlistBuilder":
        """Seed a builder with an existing netlist for structural edits.

        The returned builder aliases nothing from ``nl`` (a deep copy is
        taken), so the original stays valid.
        """
        src = nl.copy()
        b = cls(src.name)
        b._gates = src.gates
        b._nets = src.nets
        b._pis = src.primary_inputs
        b._pos = src.primary_outputs
        b._flops = src.flops
        b._net_by_name = {n.name: n.id for n in src.nets}
        b._gate_by_name = {g.name: g.id for g in src.gates}
        return b

    def insert_buffer_after(self, net_id: int, sink: Optional[tuple] = None) -> int:
        """Insert a BUF on ``net_id``.

        When ``sink`` is given as (gate_id, pin), only that branch is
        re-routed through the buffer (used by the dummy-buffer oversampling
        algorithm); otherwise all sinks move to the buffer output.

        Returns the buffer's output net id.  ``finish()`` must be called
        afterwards to re-derive sink lists.
        """
        buf_out = self.add_gate("BUF", [net_id], gate_name=f"obuf{len(self._gates)}")
        new_gate = self._gates[-1]
        # Inherit the tier of the buffered net's driver so tier statistics stay consistent.
        drv = self._nets[net_id].driver
        if drv != EXTERNAL_DRIVER:
            new_gate.tier = self._gates[drv].tier
        for g in self._gates[:-1]:
            for pin, nid in enumerate(g.fanin):
                if nid != net_id:
                    continue
                if sink is None or (g.id, pin) == tuple(sink):
                    g.fanin[pin] = buf_out
        if sink is None and net_id in self._pos:
            self._pos[self._pos.index(net_id)] = buf_out
        if sink is None:
            for f in self._flops:
                if f.d_net == net_id:
                    f.d_net = buf_out
        return buf_out
