"""Gate-level netlist substrate: cells, data structures, generators, I/O."""

from .cells import CELL_LIBRARY, CellType, cell, cell_names
from .builder import NetlistBuilder
from .netlist import EXTERNAL_DRIVER, Flop, Gate, Net, Netlist
from .generators import FLAVORS, GeneratorSpec, generate, toy_netlist
from .topology import (
    bfs_distance_from_observation,
    fanin_cone_nets,
    fanin_nets,
    fanout_cone_gates,
    reachable_observations,
    sort_gates_topologically,
)
from .testability import Testability, compute_testability
from .bench_io import dumps_bench, loads_bench, read_bench, write_bench
from .stats import NetlistProfile, format_profile, profile_netlist
from ..analysis.drc import (
    NetlistError,
    check_netlist as check,
    validate_netlist as validate,
)
from .verilog import dumps, loads, read_verilog, write_verilog

__all__ = [
    "CELL_LIBRARY",
    "CellType",
    "cell",
    "cell_names",
    "NetlistBuilder",
    "EXTERNAL_DRIVER",
    "Flop",
    "Gate",
    "Net",
    "Netlist",
    "FLAVORS",
    "GeneratorSpec",
    "generate",
    "toy_netlist",
    "bfs_distance_from_observation",
    "fanin_cone_nets",
    "fanin_nets",
    "fanout_cone_gates",
    "reachable_observations",
    "sort_gates_topologically",
    "Testability",
    "compute_testability",
    "dumps_bench",
    "loads_bench",
    "read_bench",
    "write_bench",
    "NetlistProfile",
    "format_profile",
    "profile_netlist",
    "NetlistError",
    "check",
    "validate",
    "dumps",
    "loads",
    "read_verilog",
    "write_verilog",
]
