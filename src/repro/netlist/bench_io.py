"""ISCAS-89 ``.bench`` format reader and writer.

The ``.bench`` dialect used by the ISCAS-85/89 distributions and most
academic ATPG tools::

    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G11 = NAND(G0, G10)
    G17 = NOT(G11)

DFF lines become scan flops of the full-scan model (Q = the assigned name,
D = the argument).  N-ary NAND/NOR/AND/OR map to the library's 2/3/4-input
cells, wider gates are decomposed into trees on import.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, TextIO, Tuple

from .builder import NetlistBuilder
from .netlist import EXTERNAL_DRIVER, Netlist

__all__ = ["dumps_bench", "loads_bench", "read_bench", "write_bench"]

_BENCH_OF_CELL = {
    "INV": "NOT",
    "BUF": "BUFF",
    "AND2": "AND", "AND3": "AND", "AND4": "AND",
    "OR2": "OR", "OR3": "OR", "OR4": "OR",
    "NAND2": "NAND", "NAND3": "NAND", "NAND4": "NAND",
    "NOR2": "NOR", "NOR3": "NOR", "NOR4": "NOR",
    "XOR2": "XOR", "XOR3": "XOR",
    "XNOR2": "XNOR",
}

_LINE_RE = re.compile(
    r"^\s*(?P<out>[A-Za-z0-9_.\[\]]+)\s*=\s*(?P<op>[A-Za-z]+)\s*\((?P<args>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([A-Za-z0-9_.\[\]]+)\s*\)\s*$")


def dumps_bench(nl: Netlist) -> str:
    """Serialize a netlist to ``.bench`` text.

    Raises:
        ValueError: when the netlist uses cells with no bench equivalent
            (MUX2/AOI21/OAI21) — decompose them first via
            :func:`repro.synth.resynthesize` with full rewrite probability.
    """
    lines: List[str] = [f"# {nl.name} — exported by repro"]
    for net in nl.primary_inputs:
        lines.append(f"INPUT({nl.nets[net].name})")
    for net in nl.primary_outputs:
        lines.append(f"OUTPUT({nl.nets[net].name})")
    for f in nl.flops:
        lines.append(f"{nl.nets[f.q_net].name} = DFF({nl.nets[f.d_net].name})")
    for gid in nl.topo_order():
        g = nl.gates[gid]
        op = _BENCH_OF_CELL.get(g.cell.name)
        if op is None:
            raise ValueError(
                f"cell {g.cell.name} ({g.name}) has no .bench equivalent; "
                "resynthesize(nl, rewrite_probability=1.0) first"
            )
        args = ", ".join(nl.nets[n].name for n in g.fanin)
        lines.append(f"{nl.nets[g.out].name} = {op}({args})")
    return "\n".join(lines) + "\n"


def _cell_for(op: str, n_args: int) -> Tuple[str, bool]:
    """(library cell, needs_tree) for a bench op of the given arity."""
    op = op.upper()
    if op == "NOT":
        return "INV", False
    if op in ("BUFF", "BUF"):
        return "BUF", False
    base = {"AND": "AND", "OR": "OR", "NAND": "NAND", "NOR": "NOR",
            "XOR": "XOR", "XNOR": "XNOR"}.get(op)
    if base is None:
        raise ValueError(f"unknown .bench operator {op!r}")
    if base in ("XNOR",):
        if n_args != 2:
            return "XNOR2", True
        return "XNOR2", False
    if base == "XOR":
        if n_args == 2:
            return "XOR2", False
        if n_args == 3:
            return "XOR3", False
        return "XOR2", True
    if 2 <= n_args <= 4:
        return f"{base}{n_args}", False
    return f"{base}2", True


def loads_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` text into a netlist.

    Gates wider than the library's 4-input cells are decomposed into
    balanced 2-input trees (inverting gates keep the inversion at the root).
    """
    inputs: List[str] = []
    outputs: List[str] = []
    flops: List[Tuple[str, str]] = []  # (q, d)
    gates: List[Tuple[str, str, List[str]]] = []  # (out, op, args)

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _IO_RE.match(line)
        if m:
            (inputs if m.group(1) == "INPUT" else outputs).append(m.group(2))
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise ValueError(f"unparseable .bench line: {raw!r}")
        out, op = m.group("out"), m.group("op").upper()
        args = [a.strip() for a in m.group("args").split(",") if a.strip()]
        if op == "DFF":
            if len(args) != 1:
                raise ValueError(f"DFF takes one input: {raw!r}")
            flops.append((out, args[0]))
        else:
            gates.append((out, op, args))

    b = NetlistBuilder(name)
    net_ids: Dict[str, int] = {}
    for n in inputs:
        net_ids[n] = b.add_primary_input(n)
    for q, _d in flops:
        net_ids[q] = b.add_net(q)

    counter = [0]

    def emit(op: str, args: List[int], out_name: Optional[str] = None) -> int:
        counter[0] += 1
        cell, tree = _cell_for(op, len(args))
        if not tree:
            return b.add_gate(cell, args, out_name=out_name, gate_name=f"bg{counter[0]}")
        # Decompose: non-inverting tree of the base op, inversion at the root.
        base = {"NAND": "AND", "NOR": "OR"}.get(op.upper(), op.upper())
        invert = op.upper() in ("NAND", "NOR", "XNOR")
        base2 = {"AND": "AND2", "OR": "OR2", "XOR": "XOR2", "XNOR": "XOR2"}[base if base != "XNOR" else "XOR"]
        acc = args[0]
        for i, x in enumerate(args[1:]):
            counter[0] += 1
            last = i == len(args) - 2
            acc = b.add_gate(
                base2,
                [acc, x],
                out_name=out_name if (last and not invert) else None,
                gate_name=f"bg{counter[0]}",
            )
        if invert:
            counter[0] += 1
            return b.add_gate("INV", [acc], out_name=out_name, gate_name=f"bg{counter[0]}")
        return acc

    pending = list(gates)
    while pending:
        progressed = False
        rest: List[Tuple[str, str, List[str]]] = []
        for out, op, args in pending:
            if any(a not in net_ids for a in args):
                rest.append((out, op, args))
                continue
            if len(args) == 1 and op not in ("NOT", "BUFF", "BUF"):
                op = "BUFF"  # single-input AND/OR collapse to a buffer
            net_ids[out] = emit(op, [net_ids[a] for a in args], out_name=out)
            progressed = True
        if not progressed and rest:
            missing = sorted({a for _o, _p, args in rest for a in args if a not in net_ids})
            raise ValueError(f"undriven .bench signals: {missing[:5]}")
        pending = rest

    for q, d in flops:
        if d not in net_ids:
            raise ValueError(f"flop {q} has undriven D input {d}")
        b.add_flop_with_q(d_net=net_ids[d], q_net=net_ids[q], name=f"dff_{q}")
    for n in outputs:
        if n not in net_ids:
            raise ValueError(f"OUTPUT({n}) is undriven")
        b.mark_primary_output(net_ids[n])
    return b.finish()


def write_bench(nl: Netlist, fh: TextIO) -> None:
    """Write ``.bench`` text to an open file."""
    fh.write(dumps_bench(nl))


def read_bench(fh: TextIO, name: str = "bench") -> Netlist:
    """Read ``.bench`` text from an open file."""
    return loads_bench(fh.read(), name=name)
