"""Synthetic gate-level benchmark generators.

The paper evaluates four designs (AES, Tate, netcard, leon3mp) synthesized
with a commercial flow.  Offline we cannot synthesize the original RTL, so
this module generates deterministic random-logic cores whose *structural
statistics* — gate-type mix, logic depth, fan-out skew, reconvergence, and
flop count — mimic each design's character at roughly 1/100 scale:

* ``aes_like``     — XOR-rich, round-structured datapath (crypto).
* ``tate_like``    — AND/XOR multiplier-tree arithmetic, deeper logic.
* ``netcard_like`` — MUX/AOI control logic, wide and shallow, flop-heavy.
* ``leon3mp_like`` — balanced mixture, the largest core.

Diagnosis behaviour depends on these statistics (cone sizes and overlap, how
candidates distribute over tiers), not on functional semantics, so this is
the substitution documented in DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .builder import NetlistBuilder
from .netlist import Netlist

__all__ = ["Flavor", "GeneratorSpec", "generate", "toy_netlist", "FLAVORS"]


@dataclass(frozen=True)
class Flavor:
    """Structural personality of a generated core.

    Attributes:
        gate_mix: (cell name, weight) pairs for random gate selection.
        locality: Probability that a gate input comes from the recent-net
            window rather than anywhere in the existing logic; higher values
            make deeper, narrower logic.
        window: Size of the recent-net window.
    """

    name: str
    gate_mix: Tuple[Tuple[str, float], ...]
    locality: float
    window: int


FLAVORS: Dict[str, Flavor] = {
    "aes_like": Flavor(
        "aes_like",
        (
            ("XOR2", 0.28), ("XNOR2", 0.08), ("NAND2", 0.16), ("NOR2", 0.10),
            ("AND2", 0.10), ("OR2", 0.08), ("INV", 0.10), ("NAND3", 0.05),
            ("AOI21", 0.05),
        ),
        locality=0.70,
        window=64,
    ),
    "tate_like": Flavor(
        "tate_like",
        (
            ("AND2", 0.22), ("XOR2", 0.30), ("XOR3", 0.06), ("NAND2", 0.12),
            ("INV", 0.08), ("OR2", 0.08), ("NAND3", 0.07), ("NOR2", 0.07),
        ),
        locality=0.80,
        window=48,
    ),
    "netcard_like": Flavor(
        "netcard_like",
        (
            ("MUX2", 0.20), ("AOI21", 0.12), ("OAI21", 0.10), ("NAND2", 0.14),
            ("NOR2", 0.12), ("AND2", 0.10), ("OR2", 0.08), ("INV", 0.10),
            ("BUF", 0.04),
        ),
        locality=0.45,
        window=160,
    ),
    "leon3mp_like": Flavor(
        "leon3mp_like",
        (
            ("NAND2", 0.16), ("NOR2", 0.12), ("AND2", 0.10), ("OR2", 0.10),
            ("XOR2", 0.12), ("MUX2", 0.10), ("INV", 0.10), ("AOI21", 0.07),
            ("OAI21", 0.07), ("NAND3", 0.06),
        ),
        locality=0.60,
        window=96,
    ),
}


@dataclass(frozen=True)
class GeneratorSpec:
    """Parameters of one generated design."""

    name: str
    flavor: str
    n_gates: int
    n_flops: int
    n_pis: int
    n_pos: int
    seed: int


#: Gate count at or above which :func:`generate` switches to the
#: linear-time construction.  The classic path is kept verbatim below the
#: threshold so every existing spec (and its golden netlist) is
#: byte-identical; the paper-scale tier (98K–338K gates) would take
#: quadratic time there (set→tuple conversions per pin, full-netlist
#: rewiring scans).
LARGE_GATE_THRESHOLD = 20_000


def generate(spec: GeneratorSpec, rng: Optional[random.Random] = None) -> Netlist:
    """Generate a deterministic netlist from ``spec``.

    The construction guarantees:

    * the core is acyclic (gate inputs come only from already-created nets);
    * every PI and every flop Q net drives at least one gate;
    * every gate output either fans out, feeds a PO, or feeds a flop D pin.

    ``rng`` injects a pre-seeded generator in place of
    ``random.Random(spec.seed)``; the caller owns its state.

    Specs with ``n_gates >= LARGE_GATE_THRESHOLD`` use a linear-time
    construction (:func:`_generate_large`) with the same structural
    guarantees; below the threshold the original algorithm (and therefore
    every previously generated netlist) is unchanged byte-for-byte.
    """
    if spec.n_gates >= LARGE_GATE_THRESHOLD:
        return _generate_large(spec, rng)
    flavor = FLAVORS[spec.flavor]
    rng = rng if rng is not None else random.Random(spec.seed)
    b = NetlistBuilder(spec.name)

    pis = [b.add_primary_input(f"pi{i}") for i in range(spec.n_pis)]
    q_nets = [b.add_net(f"q{i}") for i in range(spec.n_flops)]
    inputs = pis + q_nets

    cells, weights = zip(*flavor.gate_mix)
    available: List[int] = list(inputs)
    unconsumed = set(inputs)

    from .cells import cell as _cell

    for i in range(spec.n_gates):
        cname = rng.choices(cells, weights=weights, k=1)[0]
        n_in = _cell(cname).n_inputs
        fanin: List[int] = []
        for _pin in range(n_in):
            # Distinct fanins: duplicated inputs create constant nets
            # (XOR(a,a) = 0) and untestable cones real synthesis would sweep.
            for _attempt in range(8):
                if unconsumed and rng.random() < 0.35:
                    # Bias toward consuming inputs that nothing reads yet so
                    # all PIs/flop outputs end up inside the logic.
                    pick = rng.choice(tuple(unconsumed))
                elif rng.random() < flavor.locality and len(available) > flavor.window:
                    pick = rng.choice(available[-flavor.window:])
                else:
                    pick = rng.choice(available)
                if pick not in fanin:
                    break
            fanin.append(pick)
            unconsumed.discard(pick)
        out = b.add_gate(cname, fanin, gate_name=f"{spec.name}_g{i}")
        available.append(out)
        unconsumed.add(out)

    # Bind flops and POs, preferring nets no gate consumes so nothing dangles.
    dangling = [n for n in available if n in unconsumed and n not in set(inputs)]
    rng.shuffle(dangling)
    n_slots = spec.n_flops + spec.n_pos

    # More dangling outputs than flop/PO slots (small/wide configurations):
    # rewire the surplus into later gates so no logic is dead.  A gate input
    # can absorb a dangling net when its current net keeps another consumer,
    # and acyclicity holds because nets only feed later-created gates.
    if len(dangling) > n_slots:
        consumers = {n: 0 for n in range(len(b._nets))}
        for g in b._gates:
            for n in g.fanin:
                consumers[n] += 1
        surplus = dangling[n_slots:]
        dangling = dangling[:n_slots]
        for d in surplus:
            driver = b._nets[d].driver
            hosts = [g for g in b._gates if g.id > driver and d not in g.fanin]
            rng.shuffle(hosts)
            rewired = False
            for g in hosts:
                for pin, old in enumerate(g.fanin):
                    if consumers[old] >= 2:
                        consumers[old] -= 1
                        consumers[d] = consumers.get(d, 0) + 1
                        g.fanin[pin] = d
                        rewired = True
                        break
                if rewired:
                    break
            if not rewired:
                dangling.append(d)  # give it a flop/PO slot after all

    pool = dangling + [n for n in reversed(available) if n not in set(inputs)]
    seen = set()
    sink_nets: List[int] = []
    for n in pool:
        if n not in seen:
            seen.add(n)
            sink_nets.append(n)
        if len(sink_nets) >= max(n_slots, len(dangling)):
            break
    while len(sink_nets) < n_slots:
        sink_nets.append(rng.choice(available[len(inputs):]))

    # Any dangling nets beyond the slot count observe through extra POs so
    # the netlist never contains dead logic.
    for i in range(spec.n_flops):
        b.add_flop_with_q(d_net=sink_nets[i], q_net=q_nets[i], name=f"{spec.name}_ff{i}")
    for i in range(spec.n_pos):
        b.mark_primary_output(sink_nets[spec.n_flops + i])
    for n in sink_nets[n_slots:]:
        b.mark_primary_output(n)
    return b.finish()


def _generate_large(spec: GeneratorSpec, rng: Optional[random.Random] = None) -> Netlist:
    """Linear-time generator for paper-scale cores (≥ ``LARGE_GATE_THRESHOLD``).

    Same structural recipe as :func:`generate` — flavor-weighted gate mix,
    locality-windowed fanin selection, a bias toward consuming not-yet-read
    nets — but every per-gate step is O(1):

    * the "unconsumed net" draw uses a swap-pop list with lazy invalidation
      instead of materializing ``tuple(set)`` per pin;
    * locality/global picks index into the net list directly instead of
      slicing a window copy;
    * surplus dangling outputs are observed through extra POs outright
      (the sub-threshold path first tries to rewire them into later gates,
      which needs a full-netlist consumer scan per net); only *inputs* that
      ended up unread get the targeted rewiring pass, and there are O(1) of
      those.

    The stream is intentionally distinct from the classic path — the
    threshold, not the caller, picks the algorithm, and all golden/pinned
    specs sit far below it.
    """
    flavor = FLAVORS[spec.flavor]
    rng = rng if rng is not None else random.Random(spec.seed)
    b = NetlistBuilder(spec.name)

    pis = [b.add_primary_input(f"pi{i}") for i in range(spec.n_pis)]
    q_nets = [b.add_net(f"q{i}") for i in range(spec.n_flops)]
    inputs = pis + q_nets
    input_set = set(inputs)

    cells, weights = zip(*flavor.gate_mix)
    cum_weights = []
    acc = 0.0
    for w in weights:
        acc += w
        cum_weights.append(acc)

    from .cells import cell as _cell

    n_inputs_by_cell = {name: _cell(name).n_inputs for name in cells}
    available: List[int] = list(inputs)
    consumed: set = set()
    #: Candidate nets for the consume-something-unread bias.  Entries whose
    #: net got consumed through another branch are skipped lazily on pop.
    pending: List[int] = list(inputs)

    def pop_unconsumed() -> Optional[int]:
        while pending:
            i = rng.randrange(len(pending))
            pending[i], pending[-1] = pending[-1], pending[i]
            net = pending.pop()
            if net not in consumed:
                return net
        return None

    window = flavor.window
    locality = flavor.locality
    for i in range(spec.n_gates):
        cname = rng.choices(cells, cum_weights=cum_weights, k=1)[0]
        n_in = n_inputs_by_cell[cname]
        fanin: List[int] = []
        for _pin in range(n_in):
            pick: Optional[int] = None
            for _attempt in range(8):
                if pending and rng.random() < 0.35:
                    pick = pop_unconsumed()
                if pick is None:
                    if rng.random() < locality and len(available) > window:
                        pick = available[len(available) - window + rng.randrange(window)]
                    else:
                        pick = available[rng.randrange(len(available))]
                if pick not in fanin:
                    break
                pick = None
            if pick is None:  # pragma: no cover - 8 collisions on >=window nets
                pick = available[rng.randrange(len(available))]
            fanin.append(pick)
            consumed.add(pick)
        out = b.add_gate(cname, fanin, gate_name=f"{spec.name}_g{i}")
        available.append(out)
        pending.append(out)

    # Inputs nothing read (rare at this scale): rewire them into a gate pin
    # whose current net keeps another consumer.  Acyclic by construction —
    # PIs and flop Q nets predate every gate.
    unread_inputs = [n for n in inputs if n not in consumed]
    if unread_inputs:
        from collections import Counter

        counts = Counter(n for g in b._gates for n in g.fanin)
        for net in unread_inputs:
            start = rng.randrange(len(b._gates))
            for off in range(len(b._gates)):
                g = b._gates[(start + off) % len(b._gates)]
                if net in g.fanin:
                    break
                done = False
                for pin, old in enumerate(g.fanin):
                    if counts[old] >= 2:
                        counts[old] -= 1
                        counts[net] += 1
                        g.fanin[pin] = net
                        consumed.add(net)
                        done = True
                        break
                if done:
                    break

    # Bind flops and POs to dangling outputs; surplus dangling nets become
    # extra observation POs so no logic is dead.
    dangling = [n for n in available if n not in consumed and n not in input_set]
    rng.shuffle(dangling)
    n_slots = spec.n_flops + spec.n_pos
    sink_nets = dangling[:n_slots]
    extra_pos = dangling[n_slots:]
    if len(sink_nets) < n_slots:
        seen = set(sink_nets)
        for n in reversed(available):
            if len(sink_nets) >= n_slots:
                break
            if n not in seen and n not in input_set:
                seen.add(n)
                sink_nets.append(n)
        while len(sink_nets) < n_slots:  # pragma: no cover - degenerate specs
            sink_nets.append(available[rng.randrange(len(inputs), len(available))])

    for i in range(spec.n_flops):
        b.add_flop_with_q(d_net=sink_nets[i], q_net=q_nets[i], name=f"{spec.name}_ff{i}")
    for i in range(spec.n_pos):
        b.mark_primary_output(sink_nets[spec.n_flops + i])
    for n in extra_pos:
        b.mark_primary_output(n)
    return b.finish()


def toy_netlist() -> Netlist:
    """A hand-written 6-gate core used throughout tests and the quickstart.

    Structure (c17-flavored, plus one flop)::

        pi0 ─┬─ NAND2(g0) ─┬─ NAND2(g2) ── po0
        pi1 ─┘             │
        pi2 ─┬─ NAND2(g1) ─┼─ NAND2(g3) ── XOR2(g4) ── ff0.D
        pi3 ─┘             │              │
        q0  ───────────────┴──────────────┘
    """
    b = NetlistBuilder("toy")
    pi = [b.add_primary_input(f"pi{i}") for i in range(4)]
    q0 = b.add_net("q0")
    n0 = b.add_gate("NAND2", [pi[0], pi[1]], gate_name="g0")
    n1 = b.add_gate("NAND2", [pi[2], pi[3]], gate_name="g1")
    n2 = b.add_gate("NAND2", [n0, n1], gate_name="g2")
    n3 = b.add_gate("NAND2", [n1, q0], gate_name="g3")
    n4 = b.add_gate("XOR2", [n3, q0], gate_name="g4")
    b.mark_primary_output(n2)
    b.add_flop_with_q(d_net=n4, q_net=q0, name="ff0")
    return b.finish()
