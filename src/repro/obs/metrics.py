"""Metrics export: stable-schema JSON and Prometheus textfiles.

One *metrics document* snapshots everything the runtime knows about a run:
per-stage wall-clock (:class:`repro.runtime.RuntimeStats`), the span tree
(:class:`repro.obs.SpanTracer`), free-form counters, and three derived views
(cache hit ratios per artifact kind, fault-tolerance events, distributed-
runtime events) that the ``repro stats`` renderer and dashboards both want
pre-computed.

The JSON schema is versioned (:data:`METRICS_SCHEMA`) and additive-only:
consumers pin ``schema`` and ignore unknown keys.  The Prometheus writer
emits the node-exporter *textfile collector* format — drop the file into
``--collector.textfile.directory`` and every stage/span/counter scrapes as
a labelled counter.  Metrics are observability sideband: they are never
hashed into cache keys or dataset fingerprints.

Self-contained (no :mod:`repro` imports); stats objects are duck-typed via
:class:`StatsLike` so this module stays import-cycle-free.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Protocol, Union

from .spans import SpanExport, SpanTracer, render_span_tree

__all__ = [
    "METRICS_SCHEMA",
    "StatsLike",
    "load_metrics",
    "metrics_document",
    "render_metrics",
    "render_prometheus",
    "write_metrics",
    "write_prometheus",
]

#: Version of the JSON metrics schema.  Bump only on breaking shape changes;
#: additions are backwards-compatible and do not bump.
METRICS_SCHEMA = 1

#: File suffixes routed to the Prometheus-textfile writer by
#: :func:`write_metrics`; anything else gets JSON.
_PROM_SUFFIXES = (".prom", ".txt")


class StatsLike(Protocol):
    """Structural view of :class:`repro.runtime.RuntimeStats`."""

    stage_seconds: Dict[str, float]
    stage_calls: Dict[str, int]
    counters: Dict[str, int]


def _cache_view(counters: Dict[str, int]) -> Dict[str, Any]:
    """Per-kind and overall hit/miss tallies from ``cache.<kind>.<event>``."""
    kinds: Dict[str, Dict[str, Any]] = {}
    for name, value in counters.items():
        parts = name.split(".")
        if len(parts) != 3 or parts[0] != "cache" or parts[2] not in ("hit", "miss"):
            continue
        entry = kinds.setdefault(parts[1], {"hits": 0, "misses": 0})
        entry["hits" if parts[2] == "hit" else "misses"] += value

    def ratio(hits: int, misses: int) -> Optional[float]:
        total = hits + misses
        return (hits / total) if total else None

    for entry in kinds.values():
        entry["hit_ratio"] = ratio(entry["hits"], entry["misses"])
    hits = sum(e["hits"] for e in kinds.values())
    misses = sum(e["misses"] for e in kinds.values())
    return {
        "hits": hits,
        "misses": misses,
        "hit_ratio": ratio(hits, misses),
        "kinds": {k: kinds[k] for k in sorted(kinds)},
    }


def _faulttol_view(counters: Dict[str, int]) -> Dict[str, Any]:
    """Fault-tolerance events: the full ``faulttol.*`` map plus per-event totals."""
    events = {k: v for k, v in counters.items() if k.startswith("faulttol.")}
    totals: Dict[str, int] = {}
    for name, value in events.items():
        event = name.rpartition(".")[2]
        totals[event] = totals.get(event, 0) + value
    return {
        "events": {k: events[k] for k in sorted(events)},
        "totals": {k: totals[k] for k in sorted(totals)},
    }


def _dist_view(counters: Dict[str, int]) -> Dict[str, Any]:
    """Distributed-runtime events: the ``dist.*`` map plus derived health.

    ``remote_share`` is the fraction of completed units that came back over
    the wire (vs. the local fallback ladder) — 1.0 means the cluster did all
    the work, 0.0 means every unit degraded to local execution.
    """
    events = {k: v for k, v in counters.items() if k.startswith("dist.")}
    remote = events.get("dist.results_remote", 0)
    local = events.get("dist.fallback_units", 0)
    done = remote + local
    return {
        "events": {k: events[k] for k in sorted(events)},
        "remote_share": (remote / done) if done else None,
    }


def _serving_view(counters: Dict[str, int]) -> Dict[str, Any]:
    """Serving-path health: admission, batching, and diagnosis anomalies.

    ``accepted``/``rejected`` tally queue admission decisions (the rejected
    map breaks them down by cause: queue_full backpressure, malformed
    requests, missing models).  ``mean_batch_size`` is the realized
    block-diagonal packing — 1.0 means the batcher never coalesced anything.
    ``empty_backtrace`` counts diagnoses that short-circuited because the
    failure log back-traced to nothing.
    """
    rejected = {
        k.split(".", 2)[2]: v
        for k, v in counters.items()
        if k.startswith("serve.rejected.")
    }
    batches = counters.get("serve.batches", 0)
    batched = counters.get("serve.batched", 0)
    return {
        "accepted": counters.get("serve.accepted", 0),
        "rejected": {k: rejected[k] for k in sorted(rejected)},
        "responses": counters.get("serve.responses", 0),
        "batches": batches,
        "batched_requests": batched,
        "batch_errors": counters.get("serve.batch_errors", 0),
        "mean_batch_size": (batched / batches) if batches else None,
        "empty_backtrace": counters.get("diagnose.empty_backtrace", 0),
    }


def metrics_document(stats: StatsLike, tracer: Optional[SpanTracer] = None,
                     spans: Optional[SpanExport] = None) -> Dict[str, Any]:
    """The stable-schema metrics document for one run.

    Args:
        stats: Stage timings and counters (any :class:`StatsLike`).
        tracer: Span source; ignored when ``spans`` is given explicitly.
        spans: Pre-exported span map (e.g. loaded from another process).
    """
    if spans is None:
        spans = tracer.export() if tracer is not None else {}
    return {
        "schema": METRICS_SCHEMA,
        "stages": {
            name: {
                "seconds": stats.stage_seconds[name],
                "calls": stats.stage_calls.get(name, 0),
            }
            for name in sorted(stats.stage_seconds)
        },
        "counters": {k: stats.counters[k] for k in sorted(stats.counters)},
        "spans": {k: spans[k] for k in sorted(spans)},
        "cache": _cache_view(stats.counters),
        "faulttol": _faulttol_view(stats.counters),
        "dist": _dist_view(stats.counters),
        "serving": _serving_view(stats.counters),
    }


# ------------------------------------------------------------------ writers
def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_lines(doc: Dict[str, Any]) -> Iterable[str]:
    series = (
        ("repro_stage_seconds_total", "Accumulated wall-clock per stage.",
         "stage", {k: v["seconds"] for k, v in doc["stages"].items()}),
        ("repro_stage_calls_total", "Timed intervals per stage.",
         "stage", {k: v["calls"] for k, v in doc["stages"].items()}),
        ("repro_span_seconds_total", "Accumulated wall-clock per span path.",
         "span", {k: v["seconds"] for k, v in doc["spans"].items()}),
        ("repro_span_calls_total", "Completed spans per span path.",
         "span", {k: v["calls"] for k, v in doc["spans"].items()}),
        ("repro_counter_total", "Free-form runtime event counters.",
         "name", doc["counters"]),
        ("repro_cache_hits_total", "Artifact-cache hits per kind.",
         "kind", {k: v["hits"] for k, v in doc["cache"]["kinds"].items()}),
        ("repro_cache_misses_total", "Artifact-cache misses per kind.",
         "kind", {k: v["misses"] for k, v in doc["cache"]["kinds"].items()}),
    )
    for metric, help_text, label, values in series:
        if not values:
            continue
        yield f"# HELP {metric} {help_text}"
        yield f"# TYPE {metric} counter"
        for key in sorted(values):
            value = values[key]
            formatted = f"{value:.9g}" if isinstance(value, float) else str(value)
            yield f'{metric}{{{label}="{_prom_escape(key)}"}} {formatted}'


def render_prometheus(doc: Dict[str, Any]) -> str:
    """Render ``doc`` in Prometheus exposition format (``GET /metrics``)."""
    return "\n".join(_prom_lines(doc)) + "\n"


def write_prometheus(path: Union[str, os.PathLike], doc: Dict[str, Any]) -> Path:
    """Write ``doc`` in Prometheus textfile-collector format."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_prometheus(doc), encoding="utf-8")
    return out


def write_metrics(path: Union[str, os.PathLike], stats: StatsLike,
                  tracer: Optional[SpanTracer] = None) -> Path:
    """Export one metrics snapshot to ``path``.

    ``.prom``/``.txt`` suffixes get the Prometheus textfile format; every
    other suffix gets the stable-schema JSON document.
    """
    doc = metrics_document(stats, tracer)
    out = Path(path)
    if out.suffix in _PROM_SUFFIXES:
        return write_prometheus(out, doc)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return out


def load_metrics(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Load and validate one JSON metrics document.

    Raises:
        ValueError: Not a metrics document, or an unsupported schema version.
    """
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "schema" not in doc:
        raise ValueError(f"{path}: not a repro metrics document")
    if doc["schema"] != METRICS_SCHEMA:
        raise ValueError(
            f"{path}: unsupported metrics schema {doc['schema']!r} "
            f"(this build reads schema {METRICS_SCHEMA})"
        )
    return doc


# ----------------------------------------------------------------- renderer
def render_metrics(doc: Dict[str, Any], top: int = 10) -> str:
    """Human-readable rendering of a metrics document (``repro stats``).

    Sections: the span tree, the top-N stages by total seconds, cache hit
    ratios per artifact kind, and fault-tolerance events (retries, timeouts,
    pool respawns, degradations, aborts) — the questions "where did the time
    go", "did the cache help", and "what went wrong" in one screen.
    """
    lines = [render_span_tree(doc.get("spans", {}))]

    stages = doc.get("stages", {})
    if stages:
        ranked = sorted(stages.items(), key=lambda kv: (-kv[1]["seconds"], kv[0]))[:top]
        width = max(len(name) for name, _ in ranked)
        lines.append(f"\ntop {len(ranked)} stage(s) by wall-clock:")
        for name, entry in ranked:
            lines.append(
                f"  {name:<{width}s} {entry['seconds']:9.3f}s {entry['calls']:6d} calls"
            )

    cache = doc.get("cache", {})
    kinds = cache.get("kinds", {})
    if kinds:
        lines.append("\ncache hit ratios:")
        width = max(len(k) for k in kinds)
        for kind in sorted(kinds):
            entry = kinds[kind]
            ratio = entry.get("hit_ratio")
            shown = f"{ratio * 100:5.1f}%" if ratio is not None else "   n/a"
            lines.append(
                f"  {kind:<{width}s} {shown}  ({entry['hits']} hit(s), "
                f"{entry['misses']} miss(es))"
            )
        overall = cache.get("hit_ratio")
        if overall is not None:
            lines.append(
                f"  overall: {overall * 100:.1f}% of {cache['hits'] + cache['misses']} "
                "lookup(s)"
            )

    events = doc.get("faulttol", {}).get("events", {})
    lines.append("\nfaulttol events:")
    if events:
        width = max(len(k) for k in events)
        for name in sorted(events):
            lines.append(f"  {name:<{width}s} {events[name]:6d}")
    else:
        lines.append("  (none — no retries, timeouts, respawns, or degradations)")

    dist = doc.get("dist", {})
    dist_events = dist.get("events", {})
    if dist_events:
        lines.append("\ndistributed runtime:")
        width = max(len(k) for k in dist_events)
        for name in sorted(dist_events):
            lines.append(f"  {name:<{width}s} {dist_events[name]:6d}")
        share = dist.get("remote_share")
        if share is not None:
            lines.append(f"  remote share: {share * 100:.1f}% of completed units")

    serving = doc.get("serving", {})
    if serving.get("accepted") or serving.get("rejected") or serving.get("responses"):
        lines.append("\nserving:")
        lines.append(
            f"  accepted: {serving.get('accepted', 0)}  "
            f"responses: {serving.get('responses', 0)}  "
            f"batch errors: {serving.get('batch_errors', 0)}"
        )
        mean = serving.get("mean_batch_size")
        if mean is not None:
            lines.append(
                f"  batches: {serving.get('batches', 0)} "
                f"(mean size {mean:.1f} request(s))"
            )
        rejected = serving.get("rejected", {})
        for cause in sorted(rejected):
            lines.append(f"  rejected.{cause}: {rejected[cause]}")
        empty = serving.get("empty_backtrace", 0)
        if empty:
            lines.append(f"  empty back-traces: {empty}")
    return "\n".join(lines)
