"""Hierarchical span tracing for the runtime, pipeline, and CLI.

A *span* is a named, nested wall-clock interval.  Entering
``tracer.span("dataset")`` while ``tracer.span("tables.table9")`` is active
records under the dotted path ``tables.table9.dataset``, so one trace of a
full ``repro tables`` run reads as a tree: which table, which stage inside
it, which cache/pool operation inside *that*.  Repeated spans with the same
path aggregate (total seconds, call count, counters), which keeps the tree
bounded no matter how many work units execute.

Concurrency model:

* **threads** — the active-path stack is thread-local; the aggregate map is
  lock-guarded, so concurrent threads record safely (each under its own
  path).
* **worker processes** — a worker records into its own private
  :class:`SpanTracer` (created per work unit), returns :meth:`export`
  through the existing result channel, and the parent :meth:`merge`\\ s the
  buffer under its currently active span.  Span data therefore never rides
  in cache keys, fingerprints, or artifact payloads — it is observability
  sideband, excluded from provenance by construction.

Self-contained (no :mod:`repro` imports) so every layer can use it without
import cycles.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "SpanExport",
    "SpanRecord",
    "SpanTracer",
    "diff_spans",
    "get_tracer",
    "render_span_tree",
    "reset_tracer",
    "set_tracer",
]

#: Plain-data form of one tracer: ``{path: {"seconds", "calls", "counters"}}``.
#: This is what crosses process boundaries and lands in metrics documents.
SpanExport = Dict[str, Dict[str, object]]


@dataclass
class SpanRecord:
    """Aggregated statistics of every span that shares one dotted path."""

    seconds: float = 0.0
    calls: int = 0
    counters: Dict[str, int] = field(default_factory=dict)


class SpanTracer:
    """Aggregating, nesting-aware span recorder.

    The context-manager API is the whole write surface::

        with tracer.span("fit"):
            with tracer.span("tier"):
                ...                      # records under "fit.tier"
                tracer.count("graphs", n)  # counter attached to "fit.tier"
    """

    def __init__(self) -> None:
        self._records: Dict[str, SpanRecord] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------- recording
    def _stack(self) -> List[str]:
        stack: Optional[List[str]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_path(self) -> str:
        """Dotted path of the innermost active span ("" outside any span)."""
        return ".".join(self._stack())

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Record one nested interval under ``name`` (dots add levels)."""
        stack = self._stack()
        stack.append(name)
        path = ".".join(stack)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            if stack and stack[-1] == name:
                stack.pop()
            self.add(path, elapsed)

    def add(self, path: str, seconds: float, calls: int = 1) -> None:
        """Fold one finished interval (or a merged aggregate) into ``path``."""
        with self._lock:
            rec = self._records.setdefault(path, SpanRecord())
            rec.seconds += seconds
            rec.calls += calls

    def count(self, name: str, n: int = 1) -> None:
        """Attach a counter to the innermost active span (root when none)."""
        path = self.current_path()
        with self._lock:
            rec = self._records.setdefault(path, SpanRecord())
            rec.counters[name] = rec.counters.get(name, 0) + n

    # ------------------------------------------------------- export / merge
    def export(self) -> SpanExport:
        """Plain-data snapshot, safe to pickle across the result channel."""
        with self._lock:
            return {
                path: {
                    "seconds": rec.seconds,
                    "calls": rec.calls,
                    "counters": dict(rec.counters),
                }
                for path, rec in self._records.items()
            }

    def merge(self, exported: SpanExport, prefix: Optional[str] = None) -> None:
        """Fold a worker buffer in, re-rooted under ``prefix``.

        ``prefix=None`` uses the caller's currently active span path, which
        is what the runtime wants: chunk spans merged while ``dataset`` is
        active land at ``...dataset.chunk``.
        """
        if prefix is None:
            prefix = self.current_path()
        for path, rec in exported.items():
            full = f"{prefix}.{path}" if prefix and path else (prefix or path)
            self.add(full, float(rec.get("seconds", 0.0)), int(rec.get("calls", 0)))  # type: ignore[arg-type]
            counters = rec.get("counters")
            if isinstance(counters, dict):
                with self._lock:
                    target = self._records.setdefault(full, SpanRecord())
                    for k, v in counters.items():
                        target.counters[k] = target.counters.get(k, 0) + int(v)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()


def diff_spans(before: SpanExport, after: SpanExport) -> SpanExport:
    """Spans accrued between two :meth:`SpanTracer.export` snapshots.

    Used by the profiling hooks to dump the tree of one unit/stage out of a
    long-lived shared tracer.
    """
    delta: SpanExport = {}
    for path, rec in after.items():
        prev = before.get(path, {})
        seconds = float(rec["seconds"]) - float(prev.get("seconds", 0.0))  # type: ignore[arg-type]
        calls = int(rec["calls"]) - int(prev.get("calls", 0))  # type: ignore[call-overload]
        counters: Dict[str, int] = {}
        prev_counters = prev.get("counters", {})
        for k, v in rec.get("counters", {}).items():  # type: ignore[union-attr]
            dv = int(v) - int(prev_counters.get(k, 0))  # type: ignore[union-attr]
            if dv:
                counters[k] = dv
        if calls > 0 or seconds > 1e-9 or counters:
            delta[path] = {"seconds": seconds, "calls": calls, "counters": counters}
    return delta


def render_span_tree(spans: SpanExport, indent: int = 2) -> str:
    """Human-readable indented tree of an exported span map.

    Missing intermediate nodes (a counter attached at ``a.b.c`` with no
    recorded ``a.b`` interval) are synthesized with blank stats so the tree
    always nests cleanly.  Children render in name order — deterministic
    output beats by-cost ordering here; ``repro stats --top`` covers the
    cost ranking.
    """
    if not spans:
        return "span tree: (no recorded spans)"
    # Counters recorded outside any span live at path ""; show them as a
    # synthetic "(root)" node instead of an unprintable empty name.
    spans = {(path or "(root)"): rec for path, rec in spans.items()}

    children: Dict[str, List[str]] = {"": []}

    def ensure(path: str) -> None:
        if path in children:
            return
        children[path] = []
        parent = path.rpartition(".")[0]
        ensure(parent)
        children[parent].append(path)

    for path in spans:
        ensure(path)

    width = max(len(path.rpartition(".")[2]) + indent * path.count(".") for path in spans) + indent

    lines = ["span tree:"]

    def walk(path: str, depth: int) -> None:
        if path:
            rec = spans.get(path, {})
            name = " " * (indent * depth) + path.rpartition(".")[2]
            seconds = float(rec.get("seconds", 0.0))  # type: ignore[arg-type]
            calls = int(rec.get("calls", 0))  # type: ignore[call-overload]
            counters = rec.get("counters") or {}
            extra = ""
            if counters:
                inner = ", ".join(f"{k}={counters[k]}" for k in sorted(counters))  # type: ignore[index]
                extra = f"  [{inner}]"
            lines.append(f"  {name:<{width}s} {seconds:9.3f}s {calls:6d} calls{extra}")
        for child in sorted(children.get(path, [])):
            walk(child, depth + (1 if path else 0))

    walk("", 0)
    return "\n".join(lines)


# ---------------------------------------------------------------- global
_GLOBAL_TRACER: Optional[SpanTracer] = None
_GLOBAL_LOCK = threading.Lock()


def get_tracer() -> SpanTracer:
    """The process-global tracer (created on first use).

    The CLI, the dataset runtime, and the training pipeline default to this
    instance so one ``--stats-out`` flag captures the whole stack; tests
    build private tracers to compare runs in isolation.
    """
    global _GLOBAL_TRACER
    with _GLOBAL_LOCK:
        if _GLOBAL_TRACER is None:
            _GLOBAL_TRACER = SpanTracer()
        return _GLOBAL_TRACER


def set_tracer(tracer: SpanTracer) -> SpanTracer:
    """Install ``tracer`` as the process-global tracer (returns it)."""
    global _GLOBAL_TRACER
    with _GLOBAL_LOCK:
        _GLOBAL_TRACER = tracer
    return tracer


def reset_tracer() -> None:
    """Drop the process-global tracer (tests use this to isolate state)."""
    global _GLOBAL_TRACER
    with _GLOBAL_LOCK:
        _GLOBAL_TRACER = None
