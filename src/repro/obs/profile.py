"""Opt-in profiling hooks for work units and pipeline stages.

Set ``REPRO_PROFILE`` to light up per-unit profiling across the whole
stack — the runtime's worker functions and the training pipeline's fit
stages all pass through :func:`profiled`:

* ``REPRO_PROFILE=cprofile`` — each wrapped unit runs under
  :mod:`cProfile` and dumps ``<label>.prof`` (load with ``pstats`` or
  ``snakeviz``);
* ``REPRO_PROFILE=spans`` — each wrapped unit dumps the span (sub)tree it
  accrued as ``<label>.spans.txt``, diffed out of the active tracer so a
  shared tracer yields per-unit trees.

Dumps land in ``REPRO_PROFILE_DIR`` (default ``repro-profiles/``).  The
environment variables reach pool workers through normal env inheritance,
so one exported variable profiles serial and parallel runs alike.  When
``REPRO_PROFILE`` is unset the hooks are a no-op with no measurable cost.
"""

from __future__ import annotations

import os
import re
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional

from .spans import SpanTracer, diff_spans, get_tracer, render_span_tree

__all__ = [
    "PROFILE_DIR_ENV",
    "PROFILE_ENV",
    "PROFILE_MODES",
    "profile_dir",
    "profile_mode",
    "profiled",
]

PROFILE_ENV = "REPRO_PROFILE"
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"

#: Accepted ``REPRO_PROFILE`` values ("" / "off" / "0" disable).
PROFILE_MODES = ("cprofile", "spans")

_LABEL_SANITIZER = re.compile(r"[^A-Za-z0-9._-]+")


def profile_mode(env: Optional[str] = None) -> str:
    """The active profiling mode: ``""`` (off), ``"cprofile"``, or ``"spans"``.

    Raises:
        ValueError: ``REPRO_PROFILE`` is set to an unknown mode — a silently
            ignored typo would report "nothing is slow" instead of profiles.
    """
    if env is None:
        env = os.environ.get(PROFILE_ENV, "")
    mode = env.strip().lower()
    if mode in ("", "off", "0", "none"):
        return ""
    if mode not in PROFILE_MODES:
        raise ValueError(
            f"bad {PROFILE_ENV}={env!r}: expected one of {PROFILE_MODES} (or unset)"
        )
    return mode


def profile_dir() -> Path:
    """Directory receiving profile dumps (``REPRO_PROFILE_DIR``)."""
    return Path(os.environ.get(PROFILE_DIR_ENV, "") or "repro-profiles")


def _safe_label(label: str) -> str:
    return _LABEL_SANITIZER.sub("_", label).strip("._") or "unit"


@contextmanager
def profiled(label: str, tracer: Optional[SpanTracer] = None) -> Iterator[None]:
    """Profile the enclosed block per the ``REPRO_PROFILE`` mode.

    Args:
        label: Dump-file stem; sanitized for the filesystem.  Retries reuse
            a label and overwrite — last attempt wins, deterministically.
        tracer: Tracer whose span delta to dump in ``spans`` mode; defaults
            to the process-global tracer.
    """
    mode = profile_mode()
    if not mode:
        yield
        return
    out_dir = profile_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = _safe_label(label)
    if mode == "cprofile":
        import cProfile

        prof = cProfile.Profile()
        prof.enable()
        try:
            yield
        finally:
            prof.disable()
            prof.dump_stats(str(out_dir / f"{stem}.prof"))
        return
    # spans mode: dump the delta this block accrued on the tracer.
    tr = tracer if tracer is not None else get_tracer()
    before = tr.export()
    t0 = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - t0
        tree = render_span_tree(diff_spans(before, tr.export()))
        (out_dir / f"{stem}.spans.txt").write_text(
            f"unit: {label}\nwall-clock: {elapsed:.6f}s\n{tree}\n", encoding="utf-8"
        )
