"""Unified observability layer: spans, metrics export, profiling hooks.

Three self-contained pieces (no :mod:`repro` imports, so any layer can use
them without cycles):

* :mod:`~repro.obs.spans` — hierarchical span tracer: context-manager API,
  parent/child nesting via dotted paths, per-span wall-clock + counters,
  thread-safe recording, and worker-process buffers merged back through
  the runtime's existing result channel;
* :mod:`~repro.obs.metrics` — stable-schema JSON and Prometheus-textfile
  exporters fed from :class:`repro.runtime.RuntimeStats` plus the span
  tree (the ``--stats-out`` flag, rendered by ``repro stats``);
* :mod:`~repro.obs.profile` — opt-in per-unit profiling
  (``REPRO_PROFILE=cprofile|spans``) wrapping runtime work units and
  ``pipeline.fit`` stages.

Everything here is observability *sideband*: span and metrics data are
never part of cache keys, artifact payloads, or dataset fingerprints, so
tracing a build cannot change its bytes.
"""

from .metrics import (
    METRICS_SCHEMA,
    load_metrics,
    metrics_document,
    render_metrics,
    render_prometheus,
    write_metrics,
    write_prometheus,
)
from .profile import PROFILE_DIR_ENV, PROFILE_ENV, profile_dir, profile_mode, profiled
from .spans import (
    SpanRecord,
    SpanTracer,
    diff_spans,
    get_tracer,
    render_span_tree,
    reset_tracer,
    set_tracer,
)

__all__ = [
    "METRICS_SCHEMA",
    "PROFILE_DIR_ENV",
    "PROFILE_ENV",
    "SpanRecord",
    "SpanTracer",
    "diff_spans",
    "get_tracer",
    "load_metrics",
    "metrics_document",
    "profile_dir",
    "profile_mode",
    "profiled",
    "render_metrics",
    "render_prometheus",
    "render_span_tree",
    "reset_tracer",
    "set_tracer",
    "write_metrics",
    "write_prometheus",
]
